#include "core/migrate.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/journal.h"
#include "core/sim_setup.h"
#include "io/backend.h"
#include "io/pattern.h"
#include "storage/disk.h"
#include "storage/ssd.h"
#include "util/check.h"
#include "util/table.h"

namespace ldb {

const char* ChunkStateName(ChunkState state) {
  switch (state) {
    case ChunkState::kPending:
      return "pending";
    case ChunkState::kReading:
      return "reading";
    case ChunkState::kWriting:
      return "writing";
    case ChunkState::kCommitted:
      return "committed";
    case ChunkState::kAborted:
      return "aborted";
    case ChunkState::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

const char* MigrationOutcomeName(MigrationOutcome outcome) {
  switch (outcome) {
    case MigrationOutcome::kNotStarted:
      return "not-started";
    case MigrationOutcome::kRunning:
      return "running";
    case MigrationOutcome::kCompleted:
      return "completed";
    case MigrationOutcome::kRolledBack:
      return "rolled-back";
    case MigrationOutcome::kAborted:
      return "aborted";
  }
  return "unknown";
}

const char* JournalKindName(JournalKind kind) {
  switch (kind) {
    case JournalKind::kBeginMigration:
      return "begin-migration";
    case JournalKind::kBeginChunk:
      return "begin-chunk";
    case JournalKind::kRecopyChunk:
      return "recopy-chunk";
    case JournalKind::kCommitChunk:
      return "commit-chunk";
    case JournalKind::kCommitObject:
      return "commit-object";
    case JournalKind::kCommitMigration:
      return "commit-migration";
    case JournalKind::kRollbackMigration:
      return "rollback-migration";
    case JournalKind::kAbortMigration:
      return "abort-migration";
  }
  return "unknown";
}

namespace {

Status ValidateMigrateOptions(const MigrateOptions& options) {
  if (options.chunk_bytes <= 0) {
    return Status::InvalidArgument("migrate: chunk_bytes must be > 0");
  }
  if (options.bandwidth_bytes_per_s < 0.0) {
    return Status::InvalidArgument("migrate: bandwidth must be >= 0");
  }
  if (options.burst_bytes < 0) {
    return Status::InvalidArgument("migrate: burst must be >= 0");
  }
  if (options.max_bg_share <= 0.0 || options.max_bg_share > 1.0) {
    return Status::InvalidArgument("migrate: max_bg_share must be in (0,1]");
  }
  if (options.backpressure_recheck_s <= 0.0) {
    return Status::InvalidArgument(
        "migrate: backpressure_recheck_s must be > 0");
  }
  if (options.max_inflight_chunks <= 0) {
    return Status::InvalidArgument("migrate: max_inflight_chunks must be > 0");
  }
  if (options.start_delay_s < 0.0) {
    return Status::InvalidArgument("migrate: start_delay_s must be >= 0");
  }
  return Status::Ok();
}

}  // namespace

MigrationExecutor::MigrationExecutor(StorageSystem* system,
                                     const StripedVolumeManager* source,
                                     const StripedVolumeManager* destination,
                                     const MigrateOptions& options)
    : system_(system),
      source_(source),
      destination_(destination),
      options_(options) {}

Result<std::unique_ptr<MigrationExecutor>> MigrationExecutor::Create(
    StorageSystem* system, const StripedVolumeManager* source,
    const StripedVolumeManager* destination, const MigrateOptions& options) {
  if (system == nullptr || source == nullptr || destination == nullptr) {
    return Status::InvalidArgument("migrate: null system or volume manager");
  }
  LDB_RETURN_IF_ERROR(ValidateMigrateOptions(options));
  if (source->num_objects() != destination->num_objects()) {
    return Status::InvalidArgument(
        "migrate: source/destination object counts differ");
  }
  const int n = source->num_objects();
  for (int i = 0; i < n; ++i) {
    if (source->object_size(i) != destination->object_size(i)) {
      return Status::InvalidArgument(
          StrFormat("migrate: object %d sizes differ between layouts", i));
    }
  }

  auto exec = std::unique_ptr<MigrationExecutor>(
      new MigrationExecutor(system, source, destination, options));
  exec->plan_of_object_.assign(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    // Objects whose target set is unchanged never move; their physical
    // extents are the source manager's and stay valid regardless of what
    // other objects do (the executor always routes them via `source`).
    if (source->targets_of(i) == destination->targets_of(i)) continue;
    for (int j : destination->targets_of(i)) {
      if (j < 0 || j >= system->num_targets()) {
        return Status::InvalidArgument(
            StrFormat("migrate: object %d maps to unknown target %d", i, j));
      }
    }
    ObjectPlan plan;
    plan.object = i;
    const int64_t size = source->object_size(i);
    for (int64_t off = 0; off < size; off += options.chunk_bytes) {
      Chunk c;
      c.offset = off;
      c.size = std::min(options.chunk_bytes, size - off);
      plan.chunks.push_back(c);
    }
    exec->plan_of_object_[static_cast<size_t>(i)] =
        static_cast<int>(exec->plans_.size());
    exec->stats_.chunks_total += static_cast<int64_t>(plan.chunks.size());
    exec->plans_.push_back(std::move(plan));
  }
  exec->stats_.objects_migrating = static_cast<int>(exec->plans_.size());
  return exec;
}

Result<std::unique_ptr<MigrationExecutor>> MigrationExecutor::Resume(
    StorageSystem* system, const StripedVolumeManager* source,
    const StripedVolumeManager* destination, const MigrateOptions& options,
    const MigrationJournal& journal) {
  auto created = Create(system, source, destination, options);
  if (!created.ok()) return created.status();
  std::unique_ptr<MigrationExecutor> exec = std::move(created).value();

  // Replay the prefix. Begin records without a matching commit leave the
  // chunk pending — it will simply be copied again, which is idempotent.
  for (const JournalRecord& rec : journal) {
    switch (rec.kind) {
      case JournalKind::kBeginMigration:
        if (exec->outcome_ == MigrationOutcome::kNotStarted) {
          exec->outcome_ = MigrationOutcome::kRunning;
        }
        break;
      case JournalKind::kBeginChunk:
      case JournalKind::kRecopyChunk:
      case JournalKind::kCommitChunk: {
        if (rec.object < 0 || rec.object >= source->num_objects()) {
          return Status::InvalidArgument(StrFormat(
              "migrate journal: record names unknown object %d", rec.object));
        }
        const int pi = exec->plan_of_object_[static_cast<size_t>(rec.object)];
        if (pi < 0) {
          return Status::InvalidArgument(StrFormat(
              "migrate journal: object %d does not migrate in this plan",
              rec.object));
        }
        ObjectPlan& plan = exec->plans_[static_cast<size_t>(pi)];
        if (rec.chunk < 0 ||
            rec.chunk >= static_cast<int64_t>(plan.chunks.size())) {
          return Status::InvalidArgument(
              StrFormat("migrate journal: chunk %lld out of range for "
                        "object %d",
                        static_cast<long long>(rec.chunk), rec.object));
        }
        Chunk& c = plan.chunks[static_cast<size_t>(rec.chunk)];
        c.begun = true;
        if (rec.kind == JournalKind::kCommitChunk &&
            c.state != ChunkState::kCommitted) {
          c.state = ChunkState::kCommitted;
          ++plan.committed;
          ++exec->stats_.chunks_committed;
        }
        break;
      }
      case JournalKind::kCommitObject:
        break;  // implied by its chunk commits; recomputed below
      case JournalKind::kCommitMigration:
        exec->outcome_ = MigrationOutcome::kCompleted;
        break;
      case JournalKind::kRollbackMigration:
        exec->outcome_ = MigrationOutcome::kRolledBack;
        break;
      case JournalKind::kAbortMigration:
        exec->outcome_ = MigrationOutcome::kAborted;
        break;
    }
  }
  exec->journal_ = journal;
  for (ObjectPlan& plan : exec->plans_) {
    if (plan.committed == static_cast<int64_t>(plan.chunks.size())) {
      ++exec->objects_done_;
      ++exec->stats_.objects_committed;
    }
  }
  switch (exec->outcome_) {
    case MigrationOutcome::kRolledBack:
      for (ObjectPlan& plan : exec->plans_) {
        for (Chunk& c : plan.chunks) c.state = ChunkState::kRolledBack;
      }
      break;
    case MigrationOutcome::kAborted:
      for (ObjectPlan& plan : exec->plans_) {
        for (Chunk& c : plan.chunks) {
          if (c.state != ChunkState::kCommitted) {
            c.state = ChunkState::kAborted;
          }
        }
      }
      break;
    default:
      break;
  }
  return exec;
}

int MigrationExecutor::num_objects() const { return source_->num_objects(); }

int64_t MigrationExecutor::object_size(ObjectId i) const {
  return source_->object_size(i);
}

const MigrationStats& MigrationExecutor::stats() const { return stats_; }

bool MigrationExecutor::Journal(JournalKind kind, int object, int64_t chunk) {
  if (journal_failed_) return false;
  const JournalRecord rec{kind, object, chunk};
  if (journal_sink_ != nullptr) {
    const Status s = journal_sink_->Append(rec);
    if (!s.ok()) {
      // The durable intent could not be recorded: behave as if the process
      // died here. Freeze — the transition must NOT take effect, and no
      // further copies are issued. Recovery replays the on-disk prefix.
      journal_failed_ = true;
      journal_failure_ = s;
      paused_ = true;
      work_.clear();
      work_head_ = 0;
      return false;
    }
  }
  journal_.push_back(rec);
  return true;
}

void MigrationExecutor::Start() {
  if (journal_failed_) return;
  paused_ = false;
  if (outcome_ == MigrationOutcome::kNotStarted) {
    if (!Journal(JournalKind::kBeginMigration, -1, -1)) return;
    outcome_ = MigrationOutcome::kRunning;
    for (size_t pi = 0; pi < plans_.size(); ++pi) {
      const ObjectPlan& plan = plans_[pi];
      for (size_t ci = 0; ci < plan.chunks.size(); ++ci) {
        if (plan.chunks[ci].state == ChunkState::kPending) {
          work_.emplace_back(pi, ci);
        }
      }
    }
  } else if (outcome_ == MigrationOutcome::kRunning && work_.empty() &&
             work_head_ == 0 && inflight_chunks_ == 0 &&
             objects_done_ < static_cast<int64_t>(plans_.size())) {
    // Resumed from a journal prefix: rebuild the work list.
    for (size_t pi = 0; pi < plans_.size(); ++pi) {
      const ObjectPlan& plan = plans_[pi];
      for (size_t ci = 0; ci < plan.chunks.size(); ++ci) {
        if (plan.chunks[ci].state == ChunkState::kPending) {
          work_.emplace_back(pi, ci);
        }
      }
    }
  }
  if (outcome_ != MigrationOutcome::kRunning) return;
  if (stats_.start_time < 0.0) stats_.start_time = system_->Now();
  if (objects_done_ == static_cast<int64_t>(plans_.size())) {
    // Nothing (left) to copy. An empty plan completes synchronously and
    // schedules zero events — the bit-for-bit no-op guarantee.
    Complete();
    return;
  }
  // Token bucket starts full.
  if (options_.bandwidth_bytes_per_s > 0.0 && tokens_ <= 0.0) {
    tokens_ = static_cast<double>(
        std::max(options_.burst_bytes, options_.chunk_bytes));
    last_refill_ = system_->Now();
  }
  Pump();
}

void MigrationExecutor::Pause() { paused_ = true; }

void MigrationExecutor::SchedulePump(double delay_s) {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  system_->queue().ScheduleAfter(delay_s, [this]() {
    pump_scheduled_ = false;
    Pump();
  });
}

void MigrationExecutor::Pump() {
  if (outcome_ != MigrationOutcome::kRunning || paused_ || journal_failed_) {
    return;
  }
  while (work_head_ < work_.size() &&
         inflight_chunks_ < options_.max_inflight_chunks) {
    const auto [pi, ci] = work_[work_head_];
    ObjectPlan& plan = plans_[pi];
    Chunk& c = plan.chunks[ci];
    if (c.state != ChunkState::kPending) {  // stale entry
      ++work_head_;
      continue;
    }

    // Health gates: a dead destination rolls the migration back before any
    // more copies are wasted; a dead source means copies cannot proceed.
    for (int j : destination_->targets_of(plan.object)) {
      if (!system_->target(j).serviceable()) {
        Rollback(j, StrFormat("destination target %s unserviceable",
                              system_->target(j).name().c_str()));
        return;
      }
    }
    for (int j : source_->targets_of(plan.object)) {
      if (!system_->target(j).serviceable()) {
        Abort(j, StrFormat("source target %s unserviceable",
                           system_->target(j).name().c_str()));
        return;
      }
    }

    // Backpressure: counting the next copy in, keep migration's share of
    // in-flight requests at or below max_bg_share while foreground I/O is
    // queued.
    if (options_.max_bg_share < 1.0) {
      const uint64_t total = system_->InflightRequests();
      LDB_CHECK_GE(total, bg_inflight_requests_);
      const uint64_t fg = total - bg_inflight_requests_;
      if (fg > 0) {
        const double bg = static_cast<double>(bg_inflight_requests_) + 1.0;
        if (bg / (bg + static_cast<double>(fg)) > options_.max_bg_share) {
          ++stats_.backpressure_deferrals;
          SchedulePump(options_.backpressure_recheck_s);
          return;
        }
      }
    }

    // Token bucket, in copied bytes.
    if (options_.bandwidth_bytes_per_s > 0.0) {
      const double cap = static_cast<double>(
          std::max(options_.burst_bytes, options_.chunk_bytes));
      const double now = system_->Now();
      tokens_ = std::min(
          cap, tokens_ + (now - last_refill_) * options_.bandwidth_bytes_per_s);
      last_refill_ = now;
      const double need = static_cast<double>(c.size);
      // Sub-byte deficits are FP rounding, not real debt; waiting on them
      // would schedule zero-length waits that never advance simulated time.
      if (need - tokens_ >= 1.0) {
        const double wait =
            (need - tokens_) / options_.bandwidth_bytes_per_s;
        stats_.throttle_wait_s += wait;
        SchedulePump(wait);
        return;
      }
      tokens_ = std::max(0.0, tokens_ - need);
    }

    ++work_head_;
    IssueCopy(pi, ci);
  }
  if (work_head_ >= work_.size()) {
    work_.clear();
    work_head_ = 0;
  }
}

void MigrationExecutor::IssueCopy(size_t plan_index, size_t chunk_index) {
  ObjectPlan& plan = plans_[plan_index];
  Chunk& c = plan.chunks[chunk_index];
  LDB_CHECK(c.state == ChunkState::kPending);
  if (!c.begun) {
    if (!Journal(JournalKind::kBeginChunk, plan.object,
                 static_cast<int64_t>(chunk_index))) {
      return;  // frozen; the chunk stays pending for recovery to re-copy
    }
    c.begun = true;
  }
  c.state = ChunkState::kReading;
  c.read_version = c.cur_version;
  ++inflight_chunks_;
  stats_.bytes_read += c.size;
  scratch_.clear();
  source_->Map(plan.object, c.offset, c.size, &scratch_);
  SubmitCopyPass(scratch_, plan.object, c.offset, /*is_write=*/false,
                 [this, plan_index, chunk_index](const Status& s) {
                   FinishCopyRead(plan_index, chunk_index, s);
                 });
}

void MigrationExecutor::SubmitCopyPass(
    const std::vector<TargetChunk>& chunks, ObjectId object,
    int64_t logical_offset, bool is_write,
    std::function<void(const Status&)> done) {
  struct PassState {
    int pending = 0;
    Status status;
    std::function<void(const Status&)> done;
  };
  auto state = std::make_shared<PassState>();
  state->pending = static_cast<int>(chunks.size());
  state->done = std::move(done);
  int64_t logical = logical_offset;
  for (const TargetChunk& tc : chunks) {
    TargetRequest tr;
    tr.offset = tc.offset;
    tr.size = tc.size;
    tr.is_write = is_write;
    tr.object = object;
    tr.logical_offset = logical;
    logical += tc.size;
    ++bg_inflight_requests_;
    system_->SubmitWithStatus(
        tc.target, tr, [this, state](double, const Status& s) {
          LDB_CHECK_GT(bg_inflight_requests_, 0u);
          --bg_inflight_requests_;
          if (!s.ok() && state->status.ok()) state->status = s;
          if (--state->pending == 0) state->done(state->status);
        });
  }
}

void MigrationExecutor::FinishCopyRead(size_t plan_index, size_t chunk_index,
                                       const Status& status) {
  ObjectPlan& plan = plans_[plan_index];
  Chunk& c = plan.chunks[chunk_index];
  if (outcome_ != MigrationOutcome::kRunning || journal_failed_) {
    --inflight_chunks_;
    return;  // a terminal transition (or journal crash) froze the executor
  }
  if (!status.ok()) {
    --inflight_chunks_;
    Abort(-1, StrFormat("copy read failed: %s", status.message().c_str()));
    return;
  }
  LDB_CHECK(c.state == ChunkState::kReading);
  c.state = ChunkState::kWriting;
  stats_.bytes_written += c.size;
  scratch_.clear();
  destination_->Map(plan.object, c.offset, c.size, &scratch_);
  SubmitCopyPass(scratch_, plan.object, c.offset, /*is_write=*/true,
                 [this, plan_index, chunk_index](const Status& s) {
                   FinishCopyWrite(plan_index, chunk_index, s);
                 });
}

void MigrationExecutor::FinishCopyWrite(size_t plan_index, size_t chunk_index,
                                        const Status& status) {
  --inflight_chunks_;
  if (outcome_ != MigrationOutcome::kRunning || journal_failed_) return;
  ObjectPlan& plan = plans_[plan_index];
  Chunk& c = plan.chunks[chunk_index];
  if (!status.ok()) {
    Rollback(-1, StrFormat("copy write failed: %s", status.message().c_str()));
    return;
  }
  LDB_CHECK(c.state == ChunkState::kWriting);
  if (c.dirty) {
    // A foreground write landed while the copy was in flight: the
    // destination holds a stale version. Re-queue the chunk.
    if (!Journal(JournalKind::kRecopyChunk, plan.object,
                 static_cast<int64_t>(chunk_index))) {
      return;  // frozen; begun-without-commit chunks are re-copied anyway
    }
    c.dirty = false;
    c.state = ChunkState::kPending;
    ++stats_.chunks_recopied;
    work_.emplace_back(plan_index, chunk_index);
    Pump();
    return;
  }
  LDB_CHECK(c.read_version == c.cur_version);
  c.dst_version = c.read_version;
  CommitChunk(plan_index, chunk_index);
  Pump();
}

void MigrationExecutor::CommitChunk(size_t plan_index, size_t chunk_index) {
  ObjectPlan& plan = plans_[plan_index];
  Chunk& c = plan.chunks[chunk_index];
  if (options_.data_backend != nullptr) {
    // Real data plane: move the chunk's actual bytes before the commit
    // record, so a journaled commit always implies a copied chunk and
    // unjournaled chunks are simply re-copied on resume.
    const Status copied = CopyChunkReal(plan, c);
    if (!copied.ok()) {
      Rollback(-1, StrFormat("real chunk copy failed: %s",
                             copied.message().c_str()));
      return;
    }
  }
  if (!Journal(JournalKind::kCommitChunk, plan.object,
               static_cast<int64_t>(chunk_index))) {
    return;  // frozen; the chunk stays kWriting, recovery re-copies it
  }
  c.state = ChunkState::kCommitted;
  ++stats_.chunks_committed;
  ++plan.committed;
  if (plan.committed == static_cast<int64_t>(plan.chunks.size())) {
    // Object commits are derivable from their chunk commits, so a frozen
    // append here loses no recovery information — stop quietly.
    if (!Journal(JournalKind::kCommitObject, plan.object, -1)) return;
    ++stats_.objects_committed;
    ++objects_done_;
  }
  if (objects_done_ == static_cast<int64_t>(plans_.size())) {
    Complete();  // fires the commit hook itself
    return;
  }
  if (commit_hook_) commit_hook_();
}

Status MigrationExecutor::CopyChunkReal(const ObjectPlan& plan,
                                        const Chunk& chunk) {
  BlockBackend* backend = options_.data_backend;
  copy_buf_.resize(static_cast<size_t>(chunk.size));
  scratch_.clear();
  source_->Map(plan.object, chunk.offset, chunk.size, &scratch_);
  int64_t filled = 0;
  for (const TargetChunk& tc : scratch_) {
    LDB_RETURN_IF_ERROR(
        backend->ReadSync(tc.target, DataPlaneOffset(backend->geometry(), tc),
                          tc.size, &copy_buf_[filled]));
    filled += tc.size;
  }
  scratch_.clear();
  destination_->Map(plan.object, chunk.offset, chunk.size, &scratch_);
  int64_t drained = 0;
  for (const TargetChunk& tc : scratch_) {
    LDB_RETURN_IF_ERROR(backend->WriteSync(
        tc.target, DataPlaneOffset(backend->geometry(), tc), tc.size,
        &copy_buf_[drained]));
    drained += tc.size;
  }
  scratch_.clear();
  return Status::Ok();
}

void MigrationExecutor::Complete() {
  // Real data plane: the destination's bytes must be on media before the
  // commit record makes the new layout authoritative.
  if (options_.data_backend != nullptr) {
    const Status synced = options_.data_backend->Sync();
    if (!synced.ok()) {
      Rollback(-1, StrFormat("backend sync failed: %s",
                             synced.message().c_str()));
      return;
    }
  }
  // Write-ahead: authority switches to the destination only once the
  // commit record is durable. A frozen append leaves the executor running
  // (source authoritative) for recovery to finish.
  if (!Journal(JournalKind::kCommitMigration, -1, -1)) return;
  outcome_ = MigrationOutcome::kCompleted;
  stats_.end_time = system_->Now();
  if (commit_hook_) commit_hook_();
}

void MigrationExecutor::Rollback(int target, const std::string& reason) {
  if (outcome_ != MigrationOutcome::kRunning) return;
  if (!Journal(JournalKind::kRollbackMigration, -1, -1)) return;
  outcome_ = MigrationOutcome::kRolledBack;
  failed_target_ = target;
  failure_reason_ = reason;
  stats_.end_time = system_->Now();
  // The source is authoritative for every chunk: foreground writes always
  // landed there, so no data is lost.
  for (ObjectPlan& plan : plans_) {
    for (Chunk& c : plan.chunks) c.state = ChunkState::kRolledBack;
  }
  work_.clear();
  work_head_ = 0;
  if (commit_hook_) commit_hook_();
}

void MigrationExecutor::Abort(int target, const std::string& reason) {
  if (outcome_ != MigrationOutcome::kRunning) return;
  if (!Journal(JournalKind::kAbortMigration, -1, -1)) return;
  outcome_ = MigrationOutcome::kAborted;
  failed_target_ = target;
  failure_reason_ = reason;
  stats_.end_time = system_->Now();
  // Committed chunks keep serving the destination; the rest stay pointed
  // at the (possibly broken) source — re-planning is the caller's move.
  for (ObjectPlan& plan : plans_) {
    for (Chunk& c : plan.chunks) {
      if (c.state != ChunkState::kCommitted) c.state = ChunkState::kAborted;
    }
  }
  work_.clear();
  work_head_ = 0;
  if (commit_hook_) commit_hook_();
}

bool MigrationExecutor::ServesFromDestination(const ObjectPlan& /*plan*/,
                                              const Chunk& chunk) const {
  return chunk.state == ChunkState::kCommitted;
}

void MigrationExecutor::Route(ObjectId object, int64_t offset, int64_t size,
                              bool is_write, std::vector<TargetChunk>* out) {
  const int pi = plan_of_object_[static_cast<size_t>(object)];
  if (pi < 0) {
    // Non-migrating objects live in their source extents forever.
    source_->Map(object, offset, size, out);
    return;
  }
  if (outcome_ == MigrationOutcome::kCompleted) {
    destination_->Map(object, offset, size, out);
    return;
  }
  if (outcome_ == MigrationOutcome::kRolledBack) {
    source_->Map(object, offset, size, out);
    return;
  }
  ObjectPlan& plan = plans_[static_cast<size_t>(pi)];

  enum class Side { kSource, kDestination, kBoth };
  const int64_t end = offset + size;
  int64_t seg_start = offset;
  Side seg_side = Side::kSource;
  bool seg_open = false;
  const auto flush = [&](int64_t seg_end) {
    if (!seg_open || seg_end <= seg_start) return;
    const int64_t len = seg_end - seg_start;
    if (seg_side != Side::kDestination) {
      source_->Map(object, seg_start, len, out);
    }
    if (seg_side != Side::kSource) {
      destination_->Map(object, seg_start, len, out);
    }
  };

  int64_t pos = offset;
  while (pos < end) {
    const size_t ci = static_cast<size_t>(pos / options_.chunk_bytes);
    const int64_t chunk_end = std::min(
        end, (static_cast<int64_t>(ci) + 1) * options_.chunk_bytes);
    Chunk& c = plan.chunks[ci];
    Side side;
    if (is_write) {
      ++c.cur_version;
      if (outcome_ == MigrationOutcome::kAborted) {
        // Frozen routing: committed chunks live on the destination, the
        // rest on the source.
        if (c.state == ChunkState::kCommitted) {
          c.dst_version = c.cur_version;
          side = Side::kDestination;
        } else {
          c.src_version = c.cur_version;
          side = Side::kSource;
        }
      } else {
        // Pre-commit, the source takes every write (rollback stays
        // consistent); committed chunks mirror onto the destination to
        // keep it current too.
        c.src_version = c.cur_version;
        if (c.state == ChunkState::kCommitted) {
          c.dst_version = c.cur_version;
          side = Side::kBoth;
        } else {
          if (c.state == ChunkState::kReading ||
              c.state == ChunkState::kWriting) {
            c.dirty = true;  // the in-flight copy is stale; re-copy
          }
          side = Side::kSource;
        }
      }
    } else {
      side = ServesFromDestination(plan, c) ? Side::kDestination
                                            : Side::kSource;
    }
    if (!seg_open) {
      seg_open = true;
      seg_start = pos;
      seg_side = side;
    } else if (side != seg_side) {
      flush(pos);
      seg_start = pos;
      seg_side = side;
    }
    pos = chunk_end;
  }
  flush(end);
}

Status MigrationExecutor::CheckReadable() const {
  for (int i = 0; i < source_->num_objects(); ++i) {
    const int pi = plan_of_object_[static_cast<size_t>(i)];
    const int64_t size = source_->object_size(i);
    const auto check_targets = [&](const StripedVolumeManager* mgr,
                                   int64_t off, int64_t len) -> Status {
      std::vector<TargetChunk> chunks;
      mgr->Map(i, off, len, &chunks);
      for (const TargetChunk& tc : chunks) {
        if (!system_->target(tc.target).serviceable()) {
          return Status::IoError(
              StrFormat("object %d [%lld,+%lld) unreadable: target %s down",
                        i, static_cast<long long>(off),
                        static_cast<long long>(len),
                        system_->target(tc.target).name().c_str()));
        }
      }
      return Status::Ok();
    };
    if (pi < 0 || outcome_ == MigrationOutcome::kRolledBack) {
      LDB_RETURN_IF_ERROR(check_targets(source_, 0, size));
      continue;
    }
    if (outcome_ == MigrationOutcome::kCompleted) {
      LDB_RETURN_IF_ERROR(check_targets(destination_, 0, size));
      continue;
    }
    const ObjectPlan& plan = plans_[static_cast<size_t>(pi)];
    for (size_t ci = 0; ci < plan.chunks.size(); ++ci) {
      const Chunk& c = plan.chunks[ci];
      const bool dst = ServesFromDestination(plan, c);
      const uint64_t serving = dst ? c.dst_version : c.src_version;
      if (serving != c.cur_version) {
        return Status::Internal(StrFormat(
            "object %d chunk %zu: serving version %llu != current %llu", i,
            ci, static_cast<unsigned long long>(serving),
            static_cast<unsigned long long>(c.cur_version)));
      }
      LDB_RETURN_IF_ERROR(
          check_targets(dst ? destination_ : source_, c.offset, c.size));
    }
  }
  return Status::Ok();
}

std::string MigrationExecutor::StateFingerprint() const {
  std::string out = MigrationOutcomeName(outcome_);
  for (const ObjectPlan& plan : plans_) {
    out += StrFormat("|%d:", plan.object);
    for (const Chunk& c : plan.chunks) {
      // Routing-relevant digest: which side serves reads of this chunk.
      const bool dst = outcome_ == MigrationOutcome::kCompleted ||
                       (outcome_ != MigrationOutcome::kRolledBack &&
                        ServesFromDestination(plan, c));
      out += dst ? 'D' : 'S';
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Harness-level entry points.

Result<MigrationRunReport> RunMigrationSim(
    StorageSystem* system, const std::vector<int64_t>& object_sizes,
    std::vector<std::vector<int>> from_placements,
    std::vector<std::vector<int>> to_placements, int64_t lvm_stripe_bytes,
    const OlapSpec* olap, const OltpSpec* oltp, double oltp_duration_s,
    const FaultPlan& faults, const MigrateOptions& options, uint64_t seed) {
  if (options.resume && options.journal_path.empty()) {
    return Status::InvalidArgument(
        "migrate: --resume requires a journal path");
  }
  const uint64_t plan_digest = MigrationPlanDigest(
      object_sizes, from_placements, to_placements, options.chunk_bytes);
  auto source = StripedVolumeManager::Create(
      object_sizes, std::move(from_placements), system->capacities(),
      lvm_stripe_bytes);
  if (!source.ok()) return source.status();
  auto destination = StripedVolumeManager::Create(
      object_sizes, std::move(to_placements), system->capacities(),
      lvm_stripe_bytes);
  if (!destination.ok()) return destination.status();
  // Real data plane: the destination's extents must land on disjoint media
  // from the source's (both managers allocate simulated offsets from 0, so
  // without the epoch shift a destination write would clobber source bytes
  // that later chunks still read). Same assignment on resume, so recovered
  // committed chunks are found where the dead process put them.
  if (options.data_backend != nullptr) destination->set_data_epoch(1);

  // Durable control plane: recover (and digest-check) the journal before
  // the writer truncates its torn tail, then open it for appending.
  std::unique_ptr<ControlJournal> journal;
  std::unique_ptr<MigrationExecutor> exec;
  int64_t resumed_records = 0;
  if (!options.journal_path.empty()) {
    MigrationJournal recovered;
    if (options.resume) {
      auto prior = RecoverMigrationJournal(options.journal_path, plan_digest);
      if (!prior.ok()) return prior.status();
      recovered = std::move(prior).value();
      resumed_records = static_cast<int64_t>(recovered.size());
    }
    auto opened =
        ControlJournal::Open(options.journal_path, options.journal_crash);
    if (!opened.ok()) return opened.status();
    journal = std::move(opened).value();
    if (options.resume) {
      auto resumed = MigrationExecutor::Resume(system, &*source, &*destination,
                                               options, recovered);
      if (!resumed.ok()) return resumed.status();
      exec = std::move(resumed).value();
    } else {
      const Status bind = journal->AppendPlanBinding(plan_digest);
      // A simulated crash during binding means the process died at t=0:
      // the run proceeds and freezes on the executor's first record.
      if (!bind.ok() && !journal->crashed()) return bind;
      auto created =
          MigrationExecutor::Create(system, &*source, &*destination, options);
      if (!created.ok()) return created.status();
      exec = std::move(created).value();
    }
    exec->set_journal_sink(journal.get());
  } else {
    auto created =
        MigrationExecutor::Create(system, &*source, &*destination, options);
    if (!created.ok()) return created.status();
    exec = std::move(created).value();
  }

  // Real data plane: on a fresh run, lay every object's verification
  // pattern down at its *source* location before any chunk moves. Resumed
  // runs inherit the bytes a previous (killed) process wrote — committed
  // chunks already live at the destination, so re-populating would
  // clobber exactly the state the resume drill is checking.
  if (options.data_backend != nullptr && !options.resume) {
    PassthroughRouter initial(&*source);
    LDB_RETURN_IF_ERROR(
        PopulateBackendPattern(options.data_backend, &initial));
  }

  // Arm faults before the run (fault times are run-start-relative; the
  // runner's target Reset preserves fault RNG seeds and retry policy).
  FaultInjector injector(system, faults);
  LDB_RETURN_IF_ERROR(injector.Arm());

  // Start the copy engine via the queue so it begins after the runner's
  // quiescent reset, with foreground traffic already flowing.
  system->queue().ScheduleAfter(options.start_delay_s,
                                [&exec]() { exec->Start(); });

  WorkloadRunner runner(system, exec.get(), seed);
  std::vector<double> latencies;
  runner.set_logical_observer([&latencies](const IoEvent& ev) {
    latencies.push_back(ev.complete_time - ev.submit_time);
  });

  Result<RunResult> run = Status::Internal("unreachable");
  if (olap != nullptr && oltp != nullptr) {
    run = runner.RunMixed(*olap, *oltp);
  } else if (olap != nullptr) {
    run = runner.RunOlap(*olap);
  } else if (oltp != nullptr) {
    run = runner.RunOltp(*oltp, oltp_duration_s);
  } else {
    return Status::InvalidArgument("no workload given");
  }
  if (!run.ok()) return run.status();

  MigrationRunReport report;
  report.run = std::move(run).value();
  report.run.skipped_faults = injector.skipped();
  report.skipped_faults = injector.skipped();
  report.outcome = exec->outcome();
  report.stats = exec->stats();
  report.journal = exec->journal();
  report.failed_target = exec->failed_target();
  report.failure_reason = exec->failure_reason();
  report.readable = exec->CheckReadable();
  report.resumed_records = resumed_records;
  if (journal != nullptr) {
    report.journal_crashed = journal->crashed() || exec->journal_failed();
    report.journal_records = journal->records_total();
    report.journal_bytes = journal->file_bytes();
    if (exec->journal_failed()) {
      report.journal_error = exec->journal_failure().message();
    } else if (journal->crashed()) {
      report.journal_error = "wal: simulated crash";
    }
  }
  // "Every byte readable" on real media: read the whole object space back
  // through the executor's authoritative routing and check the pattern.
  if (options.data_backend != nullptr) {
    report.real_backend = true;
    auto verified = VerifyBackendPattern(options.data_backend, exec.get());
    if (verified.ok()) {
      report.real_readable = Status::Ok();
      report.real_bytes_verified = *verified;
    } else {
      report.real_readable = verified.status();
    }
  }
  report.fg_requests = static_cast<uint64_t>(latencies.size());
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double l : latencies) sum += l;
    report.fg_mean_s = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    const auto quantile = [&latencies](double q) {
      const size_t idx = static_cast<size_t>(
          q * static_cast<double>(latencies.size() - 1) + 0.5);
      return latencies[std::min(idx, latencies.size() - 1)];
    };
    report.fg_p50_s = quantile(0.50);
    report.fg_p99_s = quantile(0.99);
  }
  return report;
}

Result<MigrationRunReport> SimulateProblemMigration(
    const LayoutProblem& problem, const Layout& from, const Layout& to,
    const FaultPlan& faults, const MigrateOptions& options, double duration_s,
    uint64_t seed) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  if (duration_s <= 0.0) {
    return Status::InvalidArgument("migrate: duration must be positive");
  }
  // The source layout is the pre-existing physical state; it may violate
  // administrative pin/separate constraints (which can be why the
  // migration is happening at all). Only the destination must honor them.
  auto from_placements =
      LayoutToPlacements(problem, from, /*check_placement_constraints=*/false);
  if (!from_placements.ok()) return from_placements.status();
  auto to_placements = LayoutToPlacements(problem, to);
  if (!to_placements.ok()) return to_placements.status();

  auto rebuilt = BuildSystemForProblem(problem);
  if (!rebuilt.ok()) return rebuilt.status();
  auto fg = SyntheticForeground(problem, "migrate-fg", "migrate");
  if (!fg.ok()) return fg.status();

  return RunMigrationSim(rebuilt->system.get(), problem.object_sizes,
                         std::move(from_placements).value(),
                         std::move(to_placements).value(),
                         problem.lvm_stripe_bytes, /*olap=*/nullptr,
                         &fg.value(), duration_s, faults, options, seed);
}

}  // namespace ldb
