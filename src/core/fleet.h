#ifndef LAYOUTDB_CORE_FLEET_H_
#define LAYOUTDB_CORE_FLEET_H_

#include <cstdint>
#include <vector>

#include "core/problem.h"
#include "model/layout.h"
#include "solver/layout_nlp.h"
#include "util/status.h"

namespace ldb {

/// Tuning knobs of the hierarchical fleet solver.
struct FleetOptions {
  /// Aimed objects per shard; the shard count is ceil(N / this), clamped
  /// so every shard can receive at least `min_shard_targets` targets.
  int shard_target_objects = 96;
  /// Minimum storage targets per shard (a single-target shard has no
  /// placement freedom at all).
  int min_shard_targets = 3;
  /// Inner-solve knobs for the per-shard and coordination solves. The
  /// per-shard `num_threads` is forced to 1 — shard-level parallelism comes
  /// from `num_threads` below, and serial inner solves are what keep the
  /// result bit-identical across thread counts.
  SolverOptions solver;
  /// Shard-level parallelism: shards solve concurrently on a ThreadPool
  /// (<= 0 = one lane per hardware core). Results are written to
  /// index-addressed slots and reduced serially, so output never depends
  /// on this value.
  int num_threads = 0;
  /// Extra random multi-start seeds per shard beyond the rate-balance
  /// heuristic (per-shard MixSeed streams keep them deterministic).
  int extra_random_seeds = 0;
  /// Coordination: per round, the shard owning the hottest target is
  /// re-solved jointly with up to this many of the coolest shards and the
  /// best re-balance is kept. Rounds stop when the relative max-util gain
  /// drops below `gain_tolerance` or after `max_coordination_rounds`.
  int coordination_partners = 2;
  int max_coordination_rounds = 12;
  double gain_tolerance = 0.002;
  /// Unfrozen rows per coordination subproblem: the pair objects with the
  /// largest utilization contribution on the pair's targets move; the
  /// interior stays frozen so the polish costs O(free rows), not O(pair).
  int coordination_free_rows = 128;
  uint64_t seed = 42;
};

/// Composition and final per-shard outcome, for reporting.
struct FleetShardInfo {
  std::vector<int> objects;  ///< initial membership, ascending object ids
  std::vector<int> targets;  ///< owned targets, ascending
  double demand = 0.0;       ///< Σ total request rate of the members
  double max_utilization = 0.0;  ///< max µ over owned targets (final)
};

/// Outcome of a fleet solve.
struct FleetResult {
  Layout layout;  ///< full N x M layout (generally non-regular)
  double max_utilization = 0.0;  ///< max_j µ_j of `layout`
  bool feasible = false;         ///< integrity + capacity satisfied
  std::vector<double> utilizations;  ///< µ_j per target
  std::vector<FleetShardInfo> shards;
  int coordination_rounds = 0;  ///< rounds executed
  int accepted_moves = 0;       ///< coordination re-balances adopted
  /// Summed inner-solver effort across shard and coordination solves.
  int iterations = 0;
  int64_t objective_evaluations = 0;
  int64_t incremental_evaluations = 0;
  int64_t gradient_evaluations = 0;
  int64_t interp_queries = 0;
  /// Wall-clock breakdown (measurement only, not deterministic).
  double cluster_seconds = 0.0;
  double shard_solve_seconds = 0.0;
  double coordination_seconds = 0.0;

  FleetResult() : layout(1, 1) {}
};

/// Hierarchical solver for fleet-scale layout problems (N = O(10k) objects,
/// M = O(100) targets), where the flat NLP's per-iteration cost collapses.
///
/// Three phases:
///  1. *Cluster*: objects are grouped along the co-access graph (edges
///     weighted by rate-scaled temporal overlap, the same graph the
///     AutoAdmin baseline builds) with a demand-balance cap, and clusters
///     are packed into shards; targets are partitioned across shards
///     proportionally to shard demand (capacity-feasibility first).
///  2. *Shard solves*: each shard is an independent LayoutProblem over its
///     own objects and targets, solved with the analytic-gradient engine on
///     a ThreadPool. Because shards own disjoint target sets, dropping
///     cross-shard overlap entries is *exact* — interference only couples
///     objects co-located on a target — so the decomposition loses nothing
///     but placement freedom.
///  3. *Coordinate*: while the gain tolerance is met, the shard owning the
///     hottest target is re-solved jointly with the coolest shards over the
///     union of their targets, warm-started from the current layout with
///     all but the top contributing rows frozen — boundary objects migrate
///     and target capacity is effectively traded between the shards.
///
/// Deterministic given FleetOptions::seed, and bit-identical across
/// `num_threads` values. Administrative placement constraints are not
/// supported (they couple objects to fixed targets across shard
/// boundaries); use the flat advisor for constrained problems.
class FleetSolver {
 public:
  explicit FleetSolver(FleetOptions options = {});

  Result<FleetResult> Solve(const LayoutProblem& problem) const;

 private:
  FleetOptions options_;
};

}  // namespace ldb

#endif  // LAYOUTDB_CORE_FLEET_H_
