#ifndef LAYOUTDB_CORE_REPLAN_H_
#define LAYOUTDB_CORE_REPLAN_H_

#include <cstdint>
#include <vector>

#include "core/problem.h"
#include "core/regularize.h"
#include "model/layout.h"
#include "solver/layout_nlp.h"
#include "storage/fault.h"
#include "util/status.h"

namespace ldb {

/// Health of the storage targets as seen by the re-layout step.
struct TargetHealth {
  /// failed[j] != 0: target j serves nothing (fail-stopped RAID0 member,
  /// or a RAID group past its redundancy). All of its data must move.
  std::vector<char> failed;
  /// Fraction of healthy service capacity target j still delivers, in
  /// (0, 1]; ignored for failed targets. A limping or rebuilding group is
  /// derated, not failed: its data *may* move if that lowers the maximum
  /// effective utilization.
  std::vector<double> derate;

  static TargetHealth Healthy(int num_targets) {
    TargetHealth h;
    h.failed.assign(static_cast<size_t>(num_targets), 0);
    h.derate.assign(static_cast<size_t>(num_targets), 1.0);
    return h;
  }

  int num_targets() const { return static_cast<int>(failed.size()); }
  bool IsFailed(int j) const { return failed[static_cast<size_t>(j)] != 0; }
  void MarkFailed(int j) { failed[static_cast<size_t>(j)] = 1; }
  void Derate(int j, double factor) {
    derate[static_cast<size_t>(j)] *= factor;
  }

  bool AllHealthy() const;
  Status Validate(int num_targets) const;
};

/// Distills a fault plan into per-target health for the re-layout step.
/// Fail-stops are folded per the target's RAID level (RAID0 → failed;
/// RAID1/5 → derated survivors, failed past redundancy), sticky limps
/// derate by 1/scale, sticky transient windows by (1-p) (each attempt
/// succeeds with probability 1-p, so effective service rate scales by it).
/// Rebuild/recover events and faults with a finite duration are treated as
/// transient conditions that do not justify moving data.
TargetHealth HealthFromFaultPlan(const FaultPlan& plan,
                                 const std::vector<AdvisorTarget>& targets);

/// Bytes that must move to adopt a replanned layout.
struct MigrationPlan {
  /// moved_in_bytes[i][j]: bytes of object i newly written onto target j
  /// (size_i * max(0, L_new[i][j] - L_old[i][j])).
  std::vector<std::vector<double>> moved_in_bytes;
  double total_bytes = 0.0;
  int objects_moved = 0;  ///< rows whose target set changed
};

/// Prices the data movement needed to go from layout `from` to layout `to`.
///
/// Rows that are regular in both layouts (the advisor's output always is)
/// are priced on the *exact* 1/k fractions implied by their target sets, so
/// solver noise below `zero_tolerance` can never produce phantom moves: a
/// row whose target set is unchanged prices zero bytes. Non-regular rows
/// fall back to raw fraction deltas with sub-`zero_tolerance` deltas
/// skipped. Pass the solver's `RegularizerOptions::zero_tolerance` so
/// pricing and placement agree on what counts as zero.
MigrationPlan PriceMigration(const LayoutProblem& problem, const Layout& from,
                             const Layout& to, double zero_tolerance = 1e-4);

struct ReplanOptions {
  /// Candidate generation / derating knobs for the greedy passes. The
  /// target_derate field is overwritten from TargetHealth.
  RegularizerOptions regularize;
  /// Polish the moved rows with a warm-started projected-gradient solve
  /// (frozen_rows pins every surviving row); the polished layout is
  /// re-regularized and kept only when it strictly lowers the effective
  /// maximum utilization.
  bool solver_polish = true;
  /// Options for the polish solve. num_threads is honored; results stay
  /// bit-identical across thread counts (solver guarantee).
  SolverOptions solver;
  /// A replacement layout must beat the incumbent by at least this much.
  double improvement_epsilon = 1e-9;
};

/// Outcome of failure-aware re-layout.
struct ReplanResult {
  Layout layout;  ///< regular layout with zero mass on failed targets
  MigrationPlan migration;
  /// max_j µ_j / derate_j of `layout` under the degraded model.
  double max_utilization = 0.0;
  /// Same for the input layout (infinite when it uses a failed target).
  double previous_max_utilization = 0.0;
  bool replanned = false;  ///< false: input healthy, layout == input

  ReplanResult() : layout(1, 1) {}
};

/// Failure-aware re-layout (sibling of PlaceIncrementally): rebuilds the
/// placement around failed/derated targets while moving as little data as
/// possible.
///
/// `current` must be the regular layout in effect (every row sums to 1).
/// Rows with mass on a failed target are displaced and re-placed greedily
/// (decreasing request rate, best regular candidate under the derated
/// model, failed targets excluded via allowed-target constraints). Every
/// other row is frozen — it never moves — unless it sits on a *derated*
/// target and a refinement sweep finds a strictly better home for it.
/// An optional warm-started solver polish (see ReplanOptions) then
/// re-optimizes only the displaced rows.
///
/// The result's migration plan prices the move; a healthy TargetHealth is
/// a guaranteed no-op (layout returned unchanged, zero bytes).
///
/// \returns Infeasible when the surviving capacity cannot hold the data or
///   a displaced object has no feasible candidate; InvalidArgument for
///   malformed inputs.
Result<ReplanResult> ReplanAfterFailure(const LayoutProblem& problem,
                                        const Layout& current,
                                        const TargetHealth& health,
                                        const ReplanOptions& options = {});

}  // namespace ldb

#endif  // LAYOUTDB_CORE_REPLAN_H_
