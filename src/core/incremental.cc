#include "core/incremental.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/table.h"

namespace ldb {

Result<Layout> PlaceIncrementally(const LayoutProblem& problem,
                                  const Layout& current,
                                  RegularizerOptions options) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  const int n = problem.num_objects();
  const int m = problem.num_targets();
  if (current.num_objects() != n || current.num_targets() != m) {
    return Status::InvalidArgument("layout dimensions mismatch problem");
  }

  // Split objects into frozen (already placed) and new (all-zero rows).
  std::vector<int> to_place;
  for (int i = 0; i < n; ++i) {
    const double sum = current.RowSum(i);
    if (sum <= 1e-9) {
      to_place.push_back(i);
    } else if (std::fabs(sum - 1.0) > 1e-6) {
      return Status::InvalidArgument(StrFormat(
          "object %s is partially placed (row sums to %.3f); rows must be "
          "complete or empty",
          problem.object_names[static_cast<size_t>(i)].c_str(), sum));
    }
  }
  // The frozen rows must already fit; otherwise only a full re-layout can
  // help (e.g. an object grew past its targets' capacity). New objects'
  // all-zero rows contribute no bytes yet.
  {
    const auto bytes = current.BytesPerTarget(problem.object_sizes);
    const auto caps = problem.capacities();
    for (int j = 0; j < m; ++j) {
      if (bytes[static_cast<size_t>(j)] > caps[static_cast<size_t>(j)]) {
        return Status::CapacityExceeded(StrFormat(
            "frozen layout already exceeds target %d; re-run the full "
            "advisor",
            j));
      }
    }
  }
  if (to_place.empty()) return current;

  // Place new objects in decreasing request-rate order (the same ordering
  // the initial-layout heuristic uses).
  std::stable_sort(to_place.begin(), to_place.end(), [&](int a, int b) {
    return problem.workloads[static_cast<size_t>(a)].total_rate() >
           problem.workloads[static_cast<size_t>(b)].total_rate();
  });

  const TargetModel model = problem.MakeTargetModel();
  Layout layout = current;
  std::vector<double> mu(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    mu[static_cast<size_t>(j)] =
        model.TargetUtilization(problem.workloads, layout, j);
  }
  for (int i : to_place) {
    RegularCandidateChoice choice =
        BestRegularRowForObject(problem, model, options, &layout, i, mu);
    if (!choice.found) {
      return Status::Infeasible(StrFormat(
          "no placement for new object %s without moving existing data; "
          "re-run the full advisor",
          problem.object_names[static_cast<size_t>(i)].c_str()));
    }
    layout.SetRowRegular(i, choice.targets);
    mu = std::move(choice.mu);
  }
  return layout;
}

}  // namespace ldb
