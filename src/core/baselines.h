#ifndef LAYOUTDB_CORE_BASELINES_H_
#define LAYOUTDB_CORE_BASELINES_H_

#include "core/problem.h"
#include "model/layout.h"
#include "util/status.h"

namespace ldb {

/// The heuristic baseline layouts the paper compares against (Sections 2,
/// 6.2 and 6.4). None of them uses workload information beyond object
/// kind.

/// Stripe-everything-everywhere: every object evenly across all targets.
Layout SeeBaseline(const LayoutProblem& problem);

/// Tables isolated on `table_target`; all other objects striped evenly
/// across the remaining targets (the paper's second baseline for the "3-1"
/// heterogeneous configuration). Fails if capacities don't allow it.
Result<Layout> IsolateTablesBaseline(const LayoutProblem& problem,
                                     int table_target);

/// Tables on `table_target`, indexes on `index_target`, temp space and
/// logs on `temp_target` (the paper's second baseline for the "2-1-1"
/// configuration). Fails if capacities don't allow it.
Result<Layout> IsolateTablesIndexesBaseline(const LayoutProblem& problem,
                                            int table_target,
                                            int index_target,
                                            int temp_target);

/// Every object on the single target `target` (the paper's "all objects on
/// SSD" baseline). Fails if the target lacks capacity.
Result<Layout> AllOnOneTargetBaseline(const LayoutProblem& problem,
                                      int target);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_BASELINES_H_
