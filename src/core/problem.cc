#include "core/problem.h"

#include <utility>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

Status LayoutProblem::Validate() const {
  const size_t n = object_sizes.size();
  if (n == 0) return Status::InvalidArgument("no objects");
  if (targets.empty()) return Status::InvalidArgument("no targets");
  if (object_names.size() != n || object_kinds.size() != n ||
      workloads.size() != n) {
    return Status::InvalidArgument("object field dimension mismatch");
  }
  int64_t total_size = 0;
  for (size_t i = 0; i < n; ++i) {
    if (object_sizes[i] <= 0) {
      return Status::InvalidArgument(
          StrFormat("object %zu has non-positive size", i));
    }
    total_size += object_sizes[i];
  }
  // Clause-indexed per-workload diagnostics (dense and sparse overlap
  // invariants both checked here).
  LDB_RETURN_IF_ERROR(ValidateWorkloadSet(workloads));
  int64_t total_capacity = 0;
  for (const AdvisorTarget& t : targets) {
    if (t.capacity_bytes <= 0 || t.num_members <= 0 || t.stripe_bytes <= 0) {
      return Status::InvalidArgument(
          StrFormat("target %s has non-positive parameters",
                    t.name.c_str()));
    }
    if (t.cost_model == nullptr) {
      return Status::InvalidArgument(
          StrFormat("target %s has no cost model", t.name.c_str()));
    }
    total_capacity += t.capacity_bytes;
  }
  if (lvm_stripe_bytes <= 0) {
    return Status::InvalidArgument("LVM stripe must be positive");
  }
  if (total_capacity < total_size) {
    return Status::Infeasible(
        StrFormat("objects need %lld bytes but targets offer %lld",
                  static_cast<long long>(total_size),
                  static_cast<long long>(total_capacity)));
  }
  return constraints.Validate(num_objects(), num_targets());
}

std::vector<int64_t> LayoutProblem::capacities() const {
  std::vector<int64_t> caps;
  caps.reserve(targets.size());
  for (const AdvisorTarget& t : targets) caps.push_back(t.capacity_bytes);
  return caps;
}

TargetModel LayoutProblem::MakeTargetModel() const {
  std::vector<TargetModelInfo> infos;
  infos.reserve(targets.size());
  for (const AdvisorTarget& t : targets) {
    TargetModelInfo info;
    info.cost_model = t.cost_model;
    info.num_members = t.num_members;
    info.stripe_bytes = t.stripe_bytes;
    info.raid_level = t.raid_level;
    infos.push_back(info);
  }
  return TargetModel(std::move(infos), LvmLayoutModel(lvm_stripe_bytes));
}

LayoutNlpProblem LayoutProblem::MakeNlp(const TargetModel* model) const {
  LDB_CHECK(model != nullptr);
  LayoutNlpProblem nlp;
  nlp.num_objects = num_objects();
  nlp.num_targets = num_targets();
  nlp.object_sizes = object_sizes;
  nlp.target_capacities = capacities();
  nlp.constraints = constraints;
  const WorkloadSet* workloads_ptr = &workloads;
  nlp.target_utilization = [model, workloads_ptr](const Layout& layout,
                                                  int j) {
    return model->TargetUtilization(*workloads_ptr, layout, j);
  };
  nlp.make_column_eval = [model, workloads_ptr](int j) {
    return model->MakeColumnEvaluator(*workloads_ptr, j);
  };
  return nlp;
}

Result<LayoutProblem> MakeLayoutProblem(const Catalog& catalog,
                                        std::vector<AdvisorTarget> targets,
                                        WorkloadSet workloads,
                                        int64_t lvm_stripe_bytes) {
  LayoutProblem p;
  p.object_names = catalog.names();
  p.object_sizes = catalog.sizes();
  p.object_kinds.reserve(static_cast<size_t>(catalog.num_objects()));
  for (const DbObject& o : catalog.objects()) p.object_kinds.push_back(o.kind);
  p.workloads = std::move(workloads);
  p.targets = std::move(targets);
  p.lvm_stripe_bytes = lvm_stripe_bytes;
  LDB_RETURN_IF_ERROR(p.Validate());
  return p;
}

Result<std::vector<std::vector<int>>> LayoutToPlacements(
    const LayoutProblem& problem, const Layout& layout,
    bool check_placement_constraints) {
  if (layout.num_objects() != problem.num_objects() ||
      layout.num_targets() != problem.num_targets()) {
    return Status::InvalidArgument("layout dimensions mismatch problem");
  }
  if (!layout.IsRegular()) {
    return Status::FailedPrecondition(
        "only regular layouts are implementable by the striping LVM");
  }
  if (!layout.IsValid(problem.object_sizes, problem.capacities())) {
    return Status::Infeasible("layout violates problem constraints");
  }
  if (check_placement_constraints &&
      !problem.constraints.SatisfiedBy(layout)) {
    return Status::Infeasible("layout violates placement constraints");
  }
  std::vector<std::vector<int>> placements;
  placements.reserve(static_cast<size_t>(problem.num_objects()));
  for (int i = 0; i < problem.num_objects(); ++i) {
    placements.push_back(layout.TargetsOf(i));
  }
  return placements;
}

}  // namespace ldb
