#ifndef LAYOUTDB_CORE_ADVISOR_H_
#define LAYOUTDB_CORE_ADVISOR_H_

#include <vector>

#include "core/problem.h"
#include "core/regularize.h"
#include "model/layout.h"
#include "solver/layout_nlp.h"
#include "util/status.h"

namespace ldb {

/// Advisor configuration.
struct AdvisorOptions {
  /// Solver knobs, including the evaluation engine's `num_threads`
  /// (parallel FD columns and multi-start seeds; results are identical
  /// for every thread count) and `use_incremental_cache`.
  SolverOptions solver;
  RegularizerOptions regularizer;
  /// Produce a regular (LVM-implementable) final layout. When false the
  /// solver's non-regular layout is returned as final (for layout
  /// mechanisms that support arbitrary fractions).
  bool regularize = true;
  /// Extra random initial layouts beyond the Section 4.2 heuristic seed
  /// (the paper's optional multi-start loop, Figure 4). Our local solver
  /// benefits from a couple of restarts where MINOS used one seed.
  int extra_random_seeds = 2;
  /// Additional multi-start seeds solved alongside the heuristic and
  /// random ones — the warm-start channel. A DBA's candidate layouts, or
  /// the layout currently deployed (the autopilot passes it so a re-advise
  /// can keep most data where it already lives when that is near-optimal).
  std::vector<Layout> warm_seeds;
  uint64_t seed = 42;
};

/// Everything the advisor produced, including intermediate stages — the
/// data behind the paper's Figure 13 stage-by-stage utilization bars.
struct AdvisorResult {
  Layout initial_layout;       ///< Section 4.2 heuristic seed
  Layout solver_layout;        ///< NLP solver output (non-regular)
  Layout final_layout;         ///< regularized (== solver_layout if
                               ///< regularization is disabled)
  std::vector<double> utilization_initial;  ///< estimated µ_j per stage
  std::vector<double> utilization_solver;
  std::vector<double> utilization_final;
  double max_utilization_final = 0.0;
  double initial_seconds = 0.0;  ///< wall-clock cost of each stage
  double solver_seconds = 0.0;
  double regularization_seconds = 0.0;
  SolverResult solver_stats;

  AdvisorResult()
      : initial_layout(1, 1), solver_layout(1, 1), final_layout(1, 1) {}

  double total_seconds() const {
    return initial_seconds + solver_seconds + regularization_seconds;
  }
};

/// The workload-aware database storage layout advisor — the paper's core
/// contribution (Figure 4): heuristic initial layout → generic NLP solver
/// → optional regularization, all driven by Rome-style workload
/// descriptions and calibrated storage target models.
class LayoutAdvisor {
 public:
  explicit LayoutAdvisor(AdvisorOptions options = {});

  /// Recommends a layout for `problem`.
  Result<AdvisorResult> Recommend(const LayoutProblem& problem) const;

 private:
  AdvisorOptions options_;
};

}  // namespace ldb

#endif  // LAYOUTDB_CORE_ADVISOR_H_
