#include "core/regularize.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

double EffectiveTargetUtilization(const RegularizerOptions& options,
                                  double mu_j, int j) {
  if (options.target_derate.empty()) return mu_j;
  const double d = options.target_derate[static_cast<size_t>(j)];
  if (d >= 1.0) return mu_j;
  // Failed target: any load at all disqualifies the candidate.
  if (d <= 0.0) return mu_j > 0.0 ? 1e12 : 0.0;
  return mu_j / d;
}

Regularizer::Regularizer(const LayoutProblem* problem,
                         const TargetModel* model,
                         RegularizerOptions options)
    : problem_(problem), model_(model), options_(options) {
  LDB_CHECK(problem_ != nullptr);
  LDB_CHECK(model_ != nullptr);
}

RegularCandidateChoice BestRegularRowForObject(
    const LayoutProblem& problem, const TargetModel& model,
    const RegularizerOptions& options, Layout* current, int i,
    const std::vector<double>& mu) {
  const int m = problem.num_targets();
  const std::vector<int64_t> capacities = problem.capacities();
  LDB_CHECK(options.target_derate.empty() ||
            options.target_derate.size() == static_cast<size_t>(m));

  std::vector<bool> was_nonzero(static_cast<size_t>(m), false);
  for (int j = 0; j < m; ++j) {
    was_nonzero[static_cast<size_t>(j)] =
        current->At(i, j) > options.zero_tolerance;
  }

  // Candidate universe: the object's allowed targets (all targets when
  // unrestricted). Generating prefixes from the allowed set — rather than
  // filtering afterwards — keeps candidates available even when a
  // disallowed target would sort ahead of every allowed one.
  std::vector<int> universe;
  if (!problem.constraints.empty() &&
      !problem.constraints.AllowedFor(i).empty()) {
    universe = problem.constraints.AllowedFor(i);
  } else {
    universe.resize(static_cast<size_t>(m));
    std::iota(universe.begin(), universe.end(), 0);
  }
  // Class 1 (consistent): targets by current fraction, descending; ties
  // broken by target id (paper footnote 1).
  std::vector<int> by_fraction = universe;
  std::stable_sort(by_fraction.begin(), by_fraction.end(), [&](int a, int b) {
    return current->At(i, a) > current->At(i, b);
  });
  // Class 2 (balancing): targets by current load, ascending.
  std::vector<int> by_load = universe;
  std::stable_sort(by_load.begin(), by_load.end(), [&](int a, int b) {
    return EffectiveTargetUtilization(options, mu[static_cast<size_t>(a)],
                                      a) <
           EffectiveTargetUtilization(options, mu[static_cast<size_t>(b)], b);
  });

  std::vector<std::vector<int>> candidates;
  candidates.reserve(2 * universe.size());
  for (size_t k = 1; k <= universe.size(); ++k) {
    candidates.emplace_back(by_fraction.begin(),
                            by_fraction.begin() + static_cast<long>(k));
    if (options.balancing_candidates) {
      candidates.emplace_back(by_load.begin(),
                              by_load.begin() + static_cast<long>(k));
    }
  }
  // Administrative constraints: drop candidates using disallowed targets
  // or co-locating with a separation partner.
  if (!problem.constraints.empty()) {
    const std::vector<int>& allowed = problem.constraints.AllowedFor(i);
    std::vector<std::vector<int>> filtered;
    for (std::vector<int>& targets : candidates) {
      bool ok = true;
      if (!allowed.empty()) {
        for (int j : targets) {
          if (std::find(allowed.begin(), allowed.end(), j) == allowed.end()) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        for (const auto& [a, b] : problem.constraints.separate) {
          const int partner = a == i ? b : (b == i ? a : -1);
          if (partner < 0) continue;
          for (int j : targets) {
            if (current->At(partner, j) > options.zero_tolerance) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
        }
      }
      if (ok) filtered.push_back(std::move(targets));
    }
    candidates = std::move(filtered);
  }

  const std::vector<double> saved_row(current->Row(i), current->Row(i) + m);
  RegularCandidateChoice best;
  for (const std::vector<int>& targets : candidates) {
    current->SetRowRegular(i, targets);
    if (!current->SatisfiesCapacity(problem.object_sizes, capacities)) {
      continue;
    }
    // Only columns the row change touches need re-evaluation.
    std::vector<double> trial_mu = mu;
    double objective = 0.0;
    for (int j = 0; j < m; ++j) {
      const bool now_nonzero = current->At(i, j) > 0.0;
      if (was_nonzero[static_cast<size_t>(j)] || now_nonzero) {
        trial_mu[static_cast<size_t>(j)] =
            model.TargetUtilization(problem.workloads, *current, j);
      }
      objective = std::max(
          objective, EffectiveTargetUtilization(
                         options, trial_mu[static_cast<size_t>(j)], j));
    }
    if (!best.found || objective < best.objective) {
      best.found = true;
      best.objective = objective;
      best.targets = targets;
      best.mu = std::move(trial_mu);
    }
  }
  // Restore; the caller applies the winner.
  std::copy(saved_row.begin(), saved_row.end(), current->Row(i));
  return best;
}

Result<Layout> Regularizer::Regularize(const Layout& solver_layout) const {
  LDB_RETURN_IF_ERROR(problem_->Validate());
  const int n = problem_->num_objects();
  const int m = problem_->num_targets();
  if (solver_layout.num_objects() != n || solver_layout.num_targets() != m) {
    return Status::InvalidArgument("layout dimensions mismatch problem");
  }

  // Object order: decreasing total imposed load Σ_j µ_ij under the
  // solver's layout.
  std::vector<double> mu_ij;
  model_->Utilizations(problem_->workloads, solver_layout, &mu_ij);
  std::vector<double> object_load(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      object_load[static_cast<size_t>(i)] +=
          mu_ij[static_cast<size_t>(i) * static_cast<size_t>(m) +
                static_cast<size_t>(j)];
    }
  }
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return object_load[static_cast<size_t>(a)] >
           object_load[static_cast<size_t>(b)];
  });

  Layout current = solver_layout;
  std::vector<double> mu(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    mu[static_cast<size_t>(j)] =
        model_->TargetUtilization(problem_->workloads, current, j);
  }

  // Greedy pass: regularize one object at a time (paper Section 4.3).
  for (int i : order) {
    RegularCandidateChoice choice = BestRegularRowForObject(
        *problem_, *model_, options_, &current, i, mu);
    if (!choice.found) {
      return Status::Infeasible(StrFormat(
          "no regular candidate for object %s fits the capacity "
          "constraints; manual intervention required",
          problem_->object_names[static_cast<size_t>(i)].c_str()));
    }
    current.SetRowRegular(i, choice.targets);
    mu = std::move(choice.mu);
  }

  // Refinement sweeps: with the whole layout now regular, revisit each
  // object's candidates and keep strict improvements until a fixpoint.
  for (int pass = 0; pass < options_.refinement_passes; ++pass) {
    bool improved = false;
    for (int i : order) {
      double current_objective = 0.0;
      for (int j = 0; j < m; ++j) {
        current_objective = std::max(
            current_objective,
            EffectiveTargetUtilization(options_, mu[static_cast<size_t>(j)],
                                       j));
      }
      RegularCandidateChoice choice = BestRegularRowForObject(
          *problem_, *model_, options_, &current, i, mu);
      if (choice.found && choice.objective < current_objective - 1e-12) {
        const std::vector<int> previous = current.TargetsOf(i);
        if (previous != choice.targets) {
          current.SetRowRegular(i, choice.targets);
          mu = std::move(choice.mu);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  LDB_CHECK(current.IsRegular(1e-9));
  return current;
}

}  // namespace ldb
