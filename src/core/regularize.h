#ifndef LAYOUTDB_CORE_REGULARIZE_H_
#define LAYOUTDB_CORE_REGULARIZE_H_

#include "core/problem.h"
#include "model/layout.h"
#include "model/target_model.h"
#include "util/status.h"

namespace ldb {

/// Options for the regularization post-processing step.
struct RegularizerOptions {
  /// Layout entries at or below this are treated as zero when ordering
  /// targets by solver fraction.
  double zero_tolerance = 1e-4;
  /// After the greedy pass, up to this many refinement sweeps re-evaluate
  /// every object's candidate set against the now-regular layout and move
  /// objects while the maximum utilization improves. This corrects the
  /// greedy pass's myopia when the solver's layout is far from regular
  /// (each sweep stops early at a fixpoint).
  int refinement_passes = 3;
  /// Generate the second candidate class (balancing layouts on the
  /// currently least-loaded targets). Disabling leaves only the
  /// consistent-with-solver candidates — an ablation of the design choice
  /// discussed in paper Section 4.3.
  bool balancing_candidates = true;
  /// Per-target service derating for failure-aware re-layout: target j
  /// effectively delivers `target_derate[j]` of its healthy throughput, so
  /// candidates are ranked by µ_j / derate_j. Empty = all healthy (1.0).
  /// A derate of 0 marks a failed target: any load on it scores as
  /// (effectively) infinite utilization. Size must equal the target count
  /// when non-empty.
  std::vector<double> target_derate;
};

/// µ_j adjusted for the derating in `options` (µ_j / derate_j; huge when
/// a failed target carries load, µ_j unchanged when no derating is set).
double EffectiveTargetUtilization(const RegularizerOptions& options,
                                  double mu_j, int j);

/// Regularization post-processor (paper Section 4.3): converts the
/// solver's optimized but generally non-regular layout into a regular one
/// implementable by round-robin striping.
///
/// Objects are regularized one at a time in decreasing order of the total
/// load Σ_j µ_ij they impose, so imbalances introduced early can be
/// corrected by later objects. For each object, 2M candidate regular rows
/// are evaluated:
///  * M "consistent" candidates — the object striped across its top-k
///    targets by solver fraction (k = 1..M, ties broken by target id);
///  * M "balancing" candidates — the object striped across the k currently
///    least-loaded targets.
/// Candidates violating capacity are dropped; the one minimizing the
/// maximum estimated target utilization wins.
/// Outcome of searching the 2M regular candidates for one object.
struct RegularCandidateChoice {
  bool found = false;
  double objective = 0.0;  ///< max_j µ_j with the candidate applied
  std::vector<int> targets;
  std::vector<double> mu;  ///< refreshed per-target utilization cache
};

/// Generates the paper's 2M candidate regular rows for object `i`
/// (consistent with the current row's fractions, and balancing onto the
/// least-loaded targets), drops capacity/constraint violators, and returns
/// the one minimizing the maximum utilization. `mu` is the per-target
/// utilization cache for `current`; the winner's refreshed cache is
/// returned. Shared by the regularizer and incremental placement.
RegularCandidateChoice BestRegularRowForObject(
    const LayoutProblem& problem, const TargetModel& model,
    const RegularizerOptions& options, Layout* current, int i,
    const std::vector<double>& mu);

class Regularizer {
 public:
  /// `problem` and `model` must outlive the regularizer.
  Regularizer(const LayoutProblem* problem, const TargetModel* model,
              RegularizerOptions options = {});

  /// Returns the regularized layout, or Infeasible if some object admits
  /// no capacity-respecting candidate (the paper's "manual intervention"
  /// case, only expected under very tight space constraints).
  Result<Layout> Regularize(const Layout& solver_layout) const;

 private:
  const LayoutProblem* problem_;
  const TargetModel* model_;
  RegularizerOptions options_;
};

}  // namespace ldb

#endif  // LAYOUTDB_CORE_REGULARIZE_H_
