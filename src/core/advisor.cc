#include "core/advisor.h"

#include <chrono>
#include <utility>

#include "core/initial.h"
#include "solver/multistart.h"
#include "util/random.h"

namespace ldb {

namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

LayoutAdvisor::LayoutAdvisor(AdvisorOptions options)
    : options_(std::move(options)) {}

Result<AdvisorResult> LayoutAdvisor::Recommend(
    const LayoutProblem& problem) const {
  LDB_RETURN_IF_ERROR(problem.Validate());

  AdvisorResult result;
  const TargetModel model = problem.MakeTargetModel();
  const LayoutNlpProblem nlp = problem.MakeNlp(&model);

  // Stage 1: heuristic initial layout (Section 4.2).
  auto t0 = std::chrono::steady_clock::now();
  auto initial = InitialLayout(problem);
  if (!initial.ok()) return initial.status();
  result.initial_layout = std::move(initial).value();
  result.initial_seconds = SecondsSince(t0);
  result.utilization_initial =
      model.Utilizations(problem.workloads, result.initial_layout);

  // Stage 2: NLP solver (Section 4.1), optionally multi-start.
  t0 = std::chrono::steady_clock::now();
  std::vector<Layout> seeds{result.initial_layout};
  for (const Layout& warm : options_.warm_seeds) {
    if (warm.num_objects() == result.initial_layout.num_objects() &&
        warm.num_targets() == result.initial_layout.num_targets()) {
      seeds.push_back(warm);
    }
  }
  if (options_.extra_random_seeds > 0) {
    Rng rng(options_.seed);
    auto random_seeds = MultiStartSolver::RandomSeeds(
        nlp, options_.extra_random_seeds, &rng);
    seeds.insert(seeds.end(), random_seeds.begin(), random_seeds.end());
  }
  MultiStartSolver solver(options_.solver);
  auto solved = solver.Solve(nlp, seeds);
  if (!solved.ok()) return solved.status();
  result.solver_stats = std::move(solved).value();
  result.solver_layout = result.solver_stats.layout;
  result.solver_seconds = SecondsSince(t0);
  result.utilization_solver =
      model.Utilizations(problem.workloads, result.solver_layout);

  // Stage 3: regularization (Section 4.3).
  if (options_.regularize) {
    t0 = std::chrono::steady_clock::now();
    Regularizer regularizer(&problem, &model, options_.regularizer);
    auto regular = regularizer.Regularize(result.solver_layout);
    if (!regular.ok()) return regular.status();
    result.final_layout = std::move(regular).value();
    result.regularization_seconds = SecondsSince(t0);
  } else {
    result.final_layout = result.solver_layout;
  }
  result.utilization_final =
      model.Utilizations(problem.workloads, result.final_layout);
  result.max_utilization_final =
      *std::max_element(result.utilization_final.begin(),
                        result.utilization_final.end());
  return result;
}

}  // namespace ldb
