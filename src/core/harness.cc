#include "core/harness.h"

#include <utility>

#include "storage/disk.h"
#include "storage/lvm.h"
#include "storage/ssd.h"
#include "trace/analyzer.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

constexpr int64_t kTargetStripeBytes = 64 * kKiB;  // RAID0 chunk
// LVM stripe size. 64 KiB matches the period's Linux LVM defaults: scan
// requests span all of an object's targets, which is what makes SEE's
// interference (and the advisor's isolation decisions) matter.
constexpr int64_t kLvmStripeBytes = 64 * kKiB;

int64_t ScaledCapacity(int64_t bytes, double scale) {
  return std::max<int64_t>(4 * kMiB,
                           static_cast<int64_t>(bytes * scale));
}

}  // namespace

Result<ExperimentRig> ExperimentRig::Create(Catalog catalog,
                                            std::vector<RigTargetDef> targets,
                                            double scale, uint64_t seed) {
  return Create(std::move(catalog), std::move(targets), scale, seed,
                CalibrationOptions{});
}

Result<ExperimentRig> ExperimentRig::Create(Catalog catalog,
                                            std::vector<RigTargetDef> targets,
                                            double scale, uint64_t seed,
                                            CalibrationOptions calibration) {
  if (targets.empty()) {
    return Status::InvalidArgument("rig needs at least one target");
  }
  if (scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  ExperimentRig rig;
  rig.catalog_ = std::move(catalog);
  rig.targets_ = std::move(targets);
  rig.scale_ = scale;
  rig.seed_ = seed;

  // Device prototypes, capacities scaled with the database.
  DiskParams disk_params = Scsi15kParams();
  disk_params.capacity_bytes = ScaledCapacity(disk_params.capacity_bytes,
                                              scale);
  for (const RigTargetDef& def : rig.targets_) {
    if (def.name.empty()) {
      return Status::InvalidArgument("rig target needs a name");
    }
    std::unique_ptr<BlockDevice> proto;
    if (def.is_ssd) {
      SsdParams ssd_params;
      if (def.ssd_capacity_bytes > 0) {
        ssd_params.capacity_bytes = def.ssd_capacity_bytes;
      }
      ssd_params.capacity_bytes =
          ScaledCapacity(ssd_params.capacity_bytes, scale);
      proto = std::make_unique<SsdModel>(ssd_params);
    } else {
      if (def.disk_members <= 0) {
        return Status::InvalidArgument("disk target needs members > 0");
      }
      proto = std::make_unique<DiskModel>(disk_params);
    }
    TargetSpec spec;
    spec.name = def.name;
    spec.prototype = proto.get();
    spec.num_members = def.is_ssd ? 1 : def.disk_members;
    spec.stripe_bytes = kTargetStripeBytes;
    spec.raid_level = def.raid_level;
    rig.target_specs_.push_back(std::move(spec));
    rig.prototypes_.push_back(std::move(proto));
  }

  // Calibrate one cost model per distinct device type, via the persistent
  // cache when one is configured. The rig seed keys the measurements (it
  // participates in the cache key, so differently-seeded rigs never share
  // stale tables).
  CalibrationOptions cal = std::move(calibration);
  cal.seed = seed;
  std::vector<const BlockDevice*> protos;
  for (const auto& p : rig.prototypes_) protos.push_back(p.get());
  auto registry = CostModelRegistry::ForDevices(protos, cal);
  if (!registry.ok()) return registry.status();
  rig.cost_models_ = std::move(registry).value();
  return rig;
}

std::unique_ptr<StorageSystem> ExperimentRig::MakeSystem() const {
  return std::make_unique<StorageSystem>(target_specs_);
}

std::vector<AdvisorTarget> ExperimentRig::AdvisorTargets() const {
  std::vector<AdvisorTarget> out;
  for (size_t t = 0; t < targets_.size(); ++t) {
    AdvisorTarget at;
    at.name = targets_[t].name;
    const BlockDevice& proto = *prototypes_[t];
    const int members = target_specs_[t].num_members;
    at.raid_level = target_specs_[t].raid_level;
    switch (at.raid_level) {
      case RaidLevel::kRaid0:
        at.capacity_bytes = proto.capacity_bytes() * members;
        break;
      case RaidLevel::kRaid1:
        at.capacity_bytes = proto.capacity_bytes();
        break;
      case RaidLevel::kRaid5:
        at.capacity_bytes = proto.capacity_bytes() * (members - 1);
        break;
    }
    at.cost_model = cost_models_.Find(proto.model_name());
    LDB_CHECK(at.cost_model != nullptr);
    at.num_members = members;
    at.stripe_bytes = kTargetStripeBytes;
    out.push_back(std::move(at));
  }
  return out;
}

Result<RunResult> ExperimentRig::Execute(const Layout& layout,
                                         const OlapSpec* olap,
                                         const OltpSpec* oltp,
                                         double oltp_duration_s) const {
  if (!layout.IsRegular()) {
    return Status::FailedPrecondition(
        "Execute requires a regular layout (the LVM stripes round-robin)");
  }
  auto system = MakeSystem();
  std::vector<std::vector<int>> placements;
  placements.reserve(static_cast<size_t>(catalog_.num_objects()));
  for (int i = 0; i < catalog_.num_objects(); ++i) {
    placements.push_back(layout.TargetsOf(i));
  }
  auto volumes =
      StripedVolumeManager::Create(catalog_.sizes(), std::move(placements),
                                   system->capacities(), kLvmStripeBytes);
  if (!volumes.ok()) return volumes.status();

  WorkloadRunner runner(system.get(), &*volumes, seed_);
  if (olap != nullptr && oltp != nullptr) return runner.RunMixed(*olap, *oltp);
  if (olap != nullptr) return runner.RunOlap(*olap);
  if (oltp != nullptr) return runner.RunOltp(*oltp, oltp_duration_s);
  return Status::InvalidArgument("no workload given");
}

Result<RunResult> ExperimentRig::ExecuteWithFaults(
    const Layout& layout, const OlapSpec* olap, const OltpSpec* oltp,
    const FaultPlan& plan, double oltp_duration_s) const {
  if (!layout.IsRegular()) {
    return Status::FailedPrecondition(
        "ExecuteWithFaults requires a regular layout");
  }
  auto system = MakeSystem();
  std::vector<std::vector<int>> placements;
  placements.reserve(static_cast<size_t>(catalog_.num_objects()));
  for (int i = 0; i < catalog_.num_objects(); ++i) {
    placements.push_back(layout.TargetsOf(i));
  }
  auto volumes =
      StripedVolumeManager::Create(catalog_.sizes(), std::move(placements),
                                   system->capacities(), kLvmStripeBytes);
  if (!volumes.ok()) return volumes.status();

  // Arm before the run: fault times are ScheduleAfter-relative, and the
  // runner's target Reset preserves fault RNG seeds and retry policy.
  FaultInjector injector(system.get(), plan);
  LDB_RETURN_IF_ERROR(injector.Arm());

  WorkloadRunner runner(system.get(), &*volumes, seed_);
  Result<RunResult> run = Status::Internal("unreachable");
  if (olap != nullptr && oltp != nullptr) {
    run = runner.RunMixed(*olap, *oltp);
  } else if (olap != nullptr) {
    run = runner.RunOlap(*olap);
  } else if (oltp != nullptr) {
    run = runner.RunOltp(*oltp, oltp_duration_s);
  } else {
    return Status::InvalidArgument("no workload given");
  }
  if (!run.ok()) return run.status();
  RunResult result = std::move(run).value();
  result.skipped_faults = injector.skipped();
  return result;
}

Result<MigrationRunReport> ExperimentRig::ExecuteWithMigration(
    const Layout& from, const Layout& to, const OlapSpec* olap,
    const OltpSpec* oltp, const FaultPlan& faults,
    const MigrateOptions& options, double oltp_duration_s) const {
  if (!from.IsRegular() || !to.IsRegular()) {
    return Status::FailedPrecondition(
        "ExecuteWithMigration requires regular layouts");
  }
  auto system = MakeSystem();
  std::vector<std::vector<int>> from_placements;
  std::vector<std::vector<int>> to_placements;
  from_placements.reserve(static_cast<size_t>(catalog_.num_objects()));
  to_placements.reserve(static_cast<size_t>(catalog_.num_objects()));
  for (int i = 0; i < catalog_.num_objects(); ++i) {
    from_placements.push_back(from.TargetsOf(i));
    to_placements.push_back(to.TargetsOf(i));
  }
  return RunMigrationSim(system.get(), catalog_.sizes(),
                         std::move(from_placements), std::move(to_placements),
                         kLvmStripeBytes, olap, oltp, oltp_duration_s, faults,
                         options, seed_);
}

Result<AutopilotReport> ExperimentRig::ExecuteWithAutopilot(
    const Layout& layout, WorkloadSet reference, const OlapSpec* olap,
    const OltpSpec* oltp, const FaultPlan& faults,
    const AutopilotOptions& options, double oltp_duration_s) const {
  if (!layout.IsRegular()) {
    return Status::FailedPrecondition(
        "ExecuteWithAutopilot requires a regular layout");
  }
  auto problem = MakeProblem(std::move(reference));
  if (!problem.ok()) return problem.status();
  auto system = MakeSystem();
  return RunAutopilotSim(system.get(), *problem, layout, olap, oltp,
                         oltp_duration_s, faults, options, seed_);
}

Result<WorkloadSet> ExperimentRig::FitWorkloads(const Layout& trace_layout,
                                                const OlapSpec* olap,
                                                const OltpSpec* oltp,
                                                double oltp_duration_s) const {
  if (!trace_layout.IsRegular()) {
    return Status::FailedPrecondition("tracing layout must be regular");
  }
  auto system = MakeSystem();
  std::vector<std::vector<int>> placements;
  placements.reserve(static_cast<size_t>(catalog_.num_objects()));
  for (int i = 0; i < catalog_.num_objects(); ++i) {
    placements.push_back(trace_layout.TargetsOf(i));
  }
  auto volumes =
      StripedVolumeManager::Create(catalog_.sizes(), std::move(placements),
                                   system->capacities(), kLvmStripeBytes);
  if (!volumes.ok()) return volumes.status();

  // Fit from the object-level (pre-striping) request stream: the paper's
  // W_i describe objects, not their current on-target placement.
  IoTrace trace;
  WorkloadRunner runner(system.get(), &*volumes, seed_);
  runner.set_logical_observer([&trace](const IoEvent& ev) { trace.Add(ev); });
  Result<RunResult> run = Status::Internal("unreachable");
  if (olap != nullptr && oltp != nullptr) {
    run = runner.RunMixed(*olap, *oltp);
  } else if (olap != nullptr) {
    run = runner.RunOlap(*olap);
  } else if (oltp != nullptr) {
    run = runner.RunOltp(*oltp, oltp_duration_s);
  } else {
    return Status::InvalidArgument("no workload given");
  }
  if (!run.ok()) return run.status();

  TraceAnalyzer analyzer;
  return analyzer.Analyze(trace, catalog_.num_objects());
}

Result<LayoutProblem> ExperimentRig::MakeProblem(
    WorkloadSet workloads) const {
  return MakeLayoutProblem(catalog_, AdvisorTargets(), std::move(workloads),
                           kLvmStripeBytes);
}

}  // namespace ldb
