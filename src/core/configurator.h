#ifndef LAYOUTDB_CORE_CONFIGURATOR_H_
#define LAYOUTDB_CORE_CONFIGURATOR_H_

#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/problem.h"
#include "model/cost_model.h"
#include "util/status.h"

namespace ldb {

/// A pool of identical, unconfigured devices available to build targets
/// from (e.g. "four 18.4 GB 15K disks", "one 32 GB SSD").
struct DevicePool {
  std::string name;           ///< used to label generated targets
  int count = 0;              ///< devices available
  int64_t capacity_bytes = 0; ///< per device
  const CostModel* cost_model = nullptr;
  /// Whether devices of this pool may be grouped into RAID0 targets
  /// (false for SSDs in the paper's setting).
  bool allow_grouping = true;
  int64_t stripe_bytes = 64 * 1024;  ///< chunk size for grouped targets
};

/// Objects + workloads side of a configuration problem (everything in
/// LayoutProblem except the targets).
struct ConfiguratorInput {
  std::vector<std::string> object_names;
  std::vector<int64_t> object_sizes;
  std::vector<ObjectKind> object_kinds;
  WorkloadSet workloads;
  std::vector<DevicePool> pools;
  int64_t lvm_stripe_bytes = 64 * 1024;
};

/// One candidate configuration with its advised layout.
struct ConfiguratorResult {
  /// Description of the chosen configuration, e.g. "disk x [2,1,1] + ssd
  /// x [1]": device counts per generated target.
  std::string description;
  LayoutProblem problem;   ///< targets filled in from the configuration
  AdvisorResult advice;    ///< advisor output for that configuration
};

struct ConfiguratorOptions {
  AdvisorOptions advisor;
  /// Upper bound on distinct grouping patterns explored per pool (the
  /// number of integer partitions grows quickly; the search keeps the
  /// first `max_partitions_per_pool` in decreasing-group-size order).
  int max_partitions_per_pool = 12;
};

/// Storage configurator (the paper's Section 8 future-work direction,
/// after HP's Disk Array Designer): instead of taking storage targets as
/// given, take pools of unconfigured devices, enumerate ways of grouping
/// each pool into RAID0 targets (integer partitions of the device count),
/// run the layout advisor on every combination, and return the
/// configuration + layout minimizing the maximum estimated utilization.
///
/// Exhaustive over partition combinations (bounded by
/// `max_partitions_per_pool`), which is practical for the single-digit
/// device counts of the paper's scenarios.
Result<ConfiguratorResult> RecommendConfiguration(
    const ConfiguratorInput& input, ConfiguratorOptions options = {});

}  // namespace ldb

#endif  // LAYOUTDB_CORE_CONFIGURATOR_H_
