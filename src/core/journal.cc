#include "core/journal.h"

#include <cstdlib>
#include <utility>

#include "util/table.h"

namespace ldb {

namespace {

// Record payload prefixes. Payloads are text inside the WAL's binary
// frames: human-greppable, CRC-protected, and versioned by the WAL header.
constexpr char kTagMigration[] = "m";
constexpr char kTagPlan[] = "plan";
constexpr char kTagProblem[] = "pstate";
constexpr char kTagIntent[] = "intent";
constexpr char kTagCheckpoint[] = "ckpt";
constexpr char kTagScenarioPos[] = "spos";

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

bool JournalKindFromName(const std::string& name, JournalKind* out) {
  static constexpr JournalKind kAll[] = {
      JournalKind::kBeginMigration,    JournalKind::kBeginChunk,
      JournalKind::kRecopyChunk,       JournalKind::kCommitChunk,
      JournalKind::kCommitObject,      JournalKind::kCommitMigration,
      JournalKind::kRollbackMigration, JournalKind::kAbortMigration};
  for (JournalKind kind : kAll) {
    if (name == JournalKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

// Only records whose loss would change post-recovery routing authority
// need their own barrier. Until a migration reaches a terminal record the
// source mirrors every foreground write (committed chunks write to BOTH
// sides), so losing any batched record — including kCommitChunk — merely
// re-copies the chunk from a still-current source. The terminal records
// are where one side goes stale, so they (and the begin record that opens
// the segment) sync before taking effect.
bool IsSyncPointKind(JournalKind kind) {
  switch (kind) {
    case JournalKind::kBeginMigration:
    case JournalKind::kCommitMigration:
    case JournalKind::kRollbackMigration:
    case JournalKind::kAbortMigration:
      return true;
    case JournalKind::kBeginChunk:
    case JournalKind::kCommitChunk:
    case JournalKind::kRecopyChunk:
    case JournalKind::kCommitObject:
      return false;
  }
  return true;
}

/// Whitespace-token scanner over one record payload. Exception-free.
class FieldParser {
 public:
  explicit FieldParser(const std::string& s) : s_(s) {}

  bool NextToken(std::string* out) {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
    if (pos_ >= s_.size()) return false;
    const size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ') ++pos_;
    out->assign(s_, start, pos_ - start);
    return true;
  }
  bool NextDouble(double* out) {
    std::string tok;
    if (!NextToken(&tok)) return false;
    char* end = nullptr;
    *out = std::strtod(tok.c_str(), &end);
    return end != tok.c_str() && *end == '\0';
  }
  bool NextInt64(int64_t* out) {
    std::string tok;
    if (!NextToken(&tok)) return false;
    char* end = nullptr;
    *out = std::strtoll(tok.c_str(), &end, 10);
    return end != tok.c_str() && *end == '\0';
  }
  bool NextInt(int* out) {
    int64_t v = 0;
    if (!NextInt64(&v)) return false;
    *out = static_cast<int>(v);
    return true;
  }
  bool NextHexU64(uint64_t* out) {
    std::string tok;
    if (!NextToken(&tok)) return false;
    char* end = nullptr;
    *out = std::strtoull(tok.c_str(), &end, 16);
    return end != tok.c_str() && *end == '\0';
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

void SerializeLayout(const Layout& layout, std::string* out) {
  *out += StrFormat("%d %d", layout.num_objects(), layout.num_targets());
  for (int i = 0; i < layout.num_objects(); ++i) {
    for (int j = 0; j < layout.num_targets(); ++j) {
      *out += StrFormat(" %.17g", layout.At(i, j));
    }
  }
}

bool ParseLayout(FieldParser* p, Layout* out) {
  int n = 0, m = 0;
  // A serialized cell takes >= 2 payload bytes and records are capped at
  // 16 MiB, so dimensions past 1<<23 cells cannot be genuine — reject
  // them as corruption instead of allocating on a corrupt record's say-so.
  if (!p->NextInt(&n) || !p->NextInt(&m) || n <= 0 || m <= 0 ||
      static_cast<int64_t>(n) * m > (int64_t{1} << 23)) {
    return false;
  }
  Layout layout(n, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double v = 0.0;
      if (!p->NextDouble(&v)) return false;
      layout.Set(i, j, v);
    }
  }
  *out = std::move(layout);
  return true;
}

void SerializeWorkloads(const WorkloadSet& set, std::string* out) {
  *out += StrFormat(" ref %d", static_cast<int>(set.size()));
  for (const WorkloadDesc& w : set) {
    *out += StrFormat(" w %.17g %.17g %.17g %.17g %.17g", w.read_rate,
                      w.write_rate, w.read_size, w.write_size, w.run_count);
    if (w.has_sparse_overlap()) {
      *out += StrFormat(" s %d", static_cast<int>(w.overlap_index.size()));
      for (size_t k = 0; k < w.overlap_index.size(); ++k) {
        *out += StrFormat(" %d %.17g", w.overlap_index[k], w.overlap_value[k]);
      }
    } else {
      *out += StrFormat(" d %d", static_cast<int>(w.overlap.size()));
      for (double v : w.overlap) *out += StrFormat(" %.17g", v);
    }
  }
}

bool ParseWorkloads(FieldParser* p, WorkloadSet* out) {
  std::string tok;
  if (!p->NextToken(&tok) || tok != "ref") return false;
  int count = 0;
  if (!p->NextInt(&count) || count < 0) return false;
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (!p->NextToken(&tok) || tok != "w") return false;
    WorkloadDesc w;
    if (!p->NextDouble(&w.read_rate) || !p->NextDouble(&w.write_rate) ||
        !p->NextDouble(&w.read_size) || !p->NextDouble(&w.write_size) ||
        !p->NextDouble(&w.run_count)) {
      return false;
    }
    if (!p->NextToken(&tok)) return false;
    int len = 0;
    if (!p->NextInt(&len) || len < 0) return false;
    if (tok == "s") {
      w.overlap_index.reserve(static_cast<size_t>(len));
      w.overlap_value.reserve(static_cast<size_t>(len));
      for (int k = 0; k < len; ++k) {
        int idx = 0;
        double v = 0.0;
        if (!p->NextInt(&idx) || !p->NextDouble(&v)) return false;
        w.overlap_index.push_back(idx);
        w.overlap_value.push_back(v);
      }
    } else if (tok == "d") {
      w.overlap.reserve(static_cast<size_t>(len));
      for (int k = 0; k < len; ++k) {
        double v = 0.0;
        if (!p->NextDouble(&v)) return false;
        w.overlap.push_back(v);
      }
    } else {
      return false;
    }
    out->push_back(std::move(w));
  }
  return true;
}

Status CorruptRecord(int64_t index, const std::string& what) {
  return Status::IoError(StrFormat("control journal record %lld: %s",
                                   static_cast<long long>(index),
                                   what.c_str()));
}

/// Folds the intact record payloads into the recovered state. Any record
/// that parses as none of the known shapes is a hard error: the CRC said
/// the bytes are exactly what was written, so this is a version/format
/// disagreement, not bit rot — silently skipping could drop a commit.
Status ParseControlRecords(const std::vector<std::string>& records,
                           RecoveredControlState* out) {
  const auto begin_segment = [out]() {
    out->migration.clear();
    out->migration_committed = false;
    out->has_intent = false;
  };
  for (size_t idx = 0; idx < records.size(); ++idx) {
    FieldParser p(records[idx]);
    std::string tag;
    if (!p.NextToken(&tag)) {
      return CorruptRecord(static_cast<int64_t>(idx), "empty record");
    }
    if (tag == kTagMigration) {
      std::string kind_name;
      JournalRecord rec;
      if (!p.NextToken(&kind_name) ||
          !JournalKindFromName(kind_name, &rec.kind) ||
          !p.NextInt(&rec.object) || !p.NextInt64(&rec.chunk)) {
        return CorruptRecord(static_cast<int64_t>(idx),
                             "malformed migration record");
      }
      out->migration.push_back(rec);
      if (rec.kind == JournalKind::kCommitMigration) {
        out->migration_committed = true;
      }
    } else if (tag == kTagPlan) {
      uint64_t digest = 0;
      if (!p.NextHexU64(&digest)) {
        return CorruptRecord(static_cast<int64_t>(idx),
                             "malformed plan binding");
      }
      begin_segment();
      out->has_plan = true;
      out->plan_digest = digest;
    } else if (tag == kTagProblem) {
      uint64_t digest = 0;
      if (!p.NextHexU64(&digest)) {
        return CorruptRecord(static_cast<int64_t>(idx),
                             "malformed problem binding");
      }
      out->has_problem = true;
      out->problem_digest = digest;
    } else if (tag == kTagIntent) {
      uint64_t digest = 0;
      Layout layout(1, 1);
      WorkloadSet reference;
      if (!p.NextHexU64(&digest) || !ParseLayout(&p, &layout) ||
          !ParseWorkloads(&p, &reference)) {
        return CorruptRecord(static_cast<int64_t>(idx),
                             "malformed intent record");
      }
      begin_segment();
      out->has_plan = true;
      out->plan_digest = digest;
      out->has_intent = true;
      out->intent_layout = std::move(layout);
      out->intent_reference = std::move(reference);
    } else if (tag == kTagCheckpoint) {
      double time = 0.0;
      Layout layout(1, 1);
      WorkloadSet reference;
      if (!p.NextDouble(&time) || !ParseLayout(&p, &layout) ||
          !ParseWorkloads(&p, &reference)) {
        return CorruptRecord(static_cast<int64_t>(idx),
                             "malformed checkpoint record");
      }
      begin_segment();
      out->has_plan = false;
      out->has_checkpoint = true;
      out->checkpoint_time = time;
      out->checkpoint_layout = std::move(layout);
      out->checkpoint_reference = std::move(reference);
    } else if (tag == kTagScenarioPos) {
      double position = 0.0;
      if (!p.NextDouble(&position)) {
        return CorruptRecord(static_cast<int64_t>(idx),
                             "malformed scenario position record");
      }
      // Deliberately not reset by begin_segment(): the scenario clock
      // outlives migration segments — a resume restores the latest
      // position regardless of how many migrations ran since.
      out->has_scenario_position = true;
      out->scenario_position_s = position;
    } else {
      return CorruptRecord(
          static_cast<int64_t>(idx),
          StrFormat("unknown record tag '%s'", tag.c_str()));
    }
  }
  out->records = static_cast<int64_t>(records.size());
  return Status::Ok();
}

}  // namespace

uint64_t MigrationPlanDigest(const std::vector<int64_t>& object_sizes,
                             const std::vector<std::vector<int>>& from,
                             const std::vector<std::vector<int>>& to,
                             int64_t chunk_bytes) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  h = FnvMix(h, static_cast<uint64_t>(object_sizes.size()));
  h = FnvMix(h, static_cast<uint64_t>(chunk_bytes));
  for (int64_t s : object_sizes) h = FnvMix(h, static_cast<uint64_t>(s));
  for (const auto& placements : {&from, &to}) {
    for (const std::vector<int>& row : *placements) {
      h = FnvMix(h, static_cast<uint64_t>(row.size()));
      for (int t : row) h = FnvMix(h, static_cast<uint64_t>(t));
    }
  }
  return h;
}

bool ResolveDeployedState(const RecoveredControlState& state, Layout* layout,
                          WorkloadSet* reference) {
  if (state.has_intent && state.migration_committed) {
    // Authority switched at the durable kCommitMigration record; the crash
    // merely beat the checkpoint append. The intent record carries
    // everything the checkpoint would have.
    *layout = state.intent_layout;
    *reference = state.intent_reference;
    return true;
  }
  if (state.has_checkpoint) {
    *layout = state.checkpoint_layout;
    *reference = state.checkpoint_reference;
    return true;
  }
  return false;
}

Result<std::unique_ptr<ControlJournal>> ControlJournal::Open(
    const std::string& path, WalCrashPolicy policy) {
  auto writer = WalWriter::Open(path, policy);
  if (!writer.ok()) return writer.status();
  std::unique_ptr<ControlJournal> journal(
      new ControlJournal(std::move(writer).value()));
  // Open() already truncated any torn tail, so this re-read sees exactly
  // the intact prefix the writer will append after.
  auto read = ReadWalRecords(path);
  if (!read.ok()) return read.status();
  journal->recovered_.torn_tail = read->torn_tail;
  LDB_RETURN_IF_ERROR(ParseControlRecords(read->records,
                                          &journal->recovered_));
  return journal;
}

Status ControlJournal::Append(const JournalRecord& record) {
  LDB_RETURN_IF_ERROR(writer_->Append(
      StrFormat("%s %s %d %lld", kTagMigration, JournalKindName(record.kind),
                record.object, static_cast<long long>(record.chunk))));
  if (IsSyncPointKind(record.kind)) return writer_->Sync();
  return Status::Ok();
}

Status ControlJournal::Sync() { return writer_->Sync(); }

Status ControlJournal::AppendPlanBinding(uint64_t digest) {
  LDB_RETURN_IF_ERROR(writer_->Append(
      StrFormat("%s %llx", kTagPlan, static_cast<unsigned long long>(digest))));
  return writer_->Sync();
}

Status ControlJournal::AppendProblemBinding(uint64_t digest) {
  LDB_RETURN_IF_ERROR(writer_->Append(StrFormat(
      "%s %llx", kTagProblem, static_cast<unsigned long long>(digest))));
  return writer_->Sync();
}

Status ControlJournal::AppendIntent(uint64_t plan_digest,
                                    const Layout& destination,
                                    const WorkloadSet& reference) {
  std::string payload = StrFormat(
      "%s %llx ", kTagIntent, static_cast<unsigned long long>(plan_digest));
  SerializeLayout(destination, &payload);
  SerializeWorkloads(reference, &payload);
  LDB_RETURN_IF_ERROR(writer_->Append(payload));
  return writer_->Sync();
}

Status ControlJournal::AppendCheckpoint(double time, const Layout& layout,
                                        const WorkloadSet& reference) {
  std::string payload = StrFormat("%s %.17g ", kTagCheckpoint, time);
  SerializeLayout(layout, &payload);
  SerializeWorkloads(reference, &payload);
  LDB_RETURN_IF_ERROR(writer_->Append(payload));
  return writer_->Sync();
}

Status ControlJournal::AppendScenarioPosition(double position_s) {
  LDB_RETURN_IF_ERROR(writer_->Append(
      StrFormat("%s %.17g", kTagScenarioPos, position_s)));
  return writer_->Sync();
}

Result<RecoveredControlState> RecoverControlState(const std::string& path) {
  auto read = ReadWalRecords(path);
  if (!read.ok()) return read.status();
  RecoveredControlState state;
  state.torn_tail = read->torn_tail;
  LDB_RETURN_IF_ERROR(ParseControlRecords(read->records, &state));
  return state;
}

Result<MigrationJournal> RecoverMigrationJournal(const std::string& path,
                                                 uint64_t expected_digest) {
  auto state = RecoverControlState(path);
  if (!state.ok()) return state.status();
  if (!state->has_plan) {
    return Status::FailedPrecondition(StrFormat(
        "journal %s holds no migration plan binding; nothing to resume",
        path.c_str()));
  }
  if (state->plan_digest != expected_digest) {
    return Status::FailedPrecondition(StrFormat(
        "journal %s was recorded for a different migration plan "
        "(journal digest %llx, plan digest %llx); refusing to resume",
        path.c_str(), static_cast<unsigned long long>(state->plan_digest),
        static_cast<unsigned long long>(expected_digest)));
  }
  return std::move(state->migration);
}

}  // namespace ldb
