#ifndef LAYOUTDB_MODEL_CALIBRATION_H_
#define LAYOUTDB_MODEL_CALIBRATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "storage/device.h"
#include "util/units.h"

namespace ldb {

/// Calibration workload grid and sampling parameters.
struct CalibrationOptions {
  std::vector<double> size_axis = {
      static_cast<double>(4 * kKiB),   static_cast<double>(8 * kKiB),
      static_cast<double>(16 * kKiB),  static_cast<double>(32 * kKiB),
      static_cast<double>(64 * kKiB),  static_cast<double>(128 * kKiB),
      static_cast<double>(256 * kKiB), static_cast<double>(512 * kKiB),
      static_cast<double>(kMiB)};
  std::vector<double> run_axis = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<double> contention_axis = {0, 0.5, 1, 2, 4, 8, 16};
  int warmup_requests = 32;   ///< discarded before measuring
  int sample_requests = 256;  ///< measured requests per grid point
  int64_t interferer_size_bytes = 8 * kKiB;
  uint64_t seed = 1;
  /// Calibration parallelism over grid points: 0 = one lane per hardware
  /// core, n = exactly n. Every grid point runs against its own device
  /// clone with its own RNG derived from (seed, point index), so the
  /// tables are bit-identical for every thread count.
  int num_threads = 0;
  /// Directory of the on-disk cost-model cache used by
  /// CalibrateDeviceCached / CostModelRegistry::ForDevices; empty = the
  /// LDB_CALIBRATION_CACHE environment variable, or no caching when that
  /// is unset too. Does not affect measured values (excluded from the
  /// cache key, like num_threads).
  std::string cache_dir;
};

/// Builds a black-box cost model for a device type by measurement (paper
/// Section 5.2.2): for every (request size, run count, contention) grid
/// point, subjects a fresh copy of the device to a primary request stream
/// with those properties plus `contention` interfering random requests per
/// primary request, and tabulates the mean primary service time. Requests
/// are served shortest-positioning-first, mimicking a device queue under
/// concurrent load, which is what produces the paper's Figure 8 effects
/// (sequential advantage collapsing around χ=2; random cost decreasing
/// with queue depth).
Result<CostModel> CalibrateDevice(const BlockDevice& prototype,
                                  const CalibrationOptions& options = {});

/// CalibrateDevice behind the persistent cost-model cache: returns the
/// stored tables bit-identically on a hit; on a miss — or any unreadable,
/// corrupt, or stale cache file — calibrates and stores the result. Cache
/// I/O failures never fail the call, they only cost a recalibration.
Result<CostModel> CalibrateDeviceCached(const BlockDevice& prototype,
                                        const CalibrationOptions& options = {});

/// 64-bit key identifying one calibration: a hash of the device's
/// ParamsText() and every CalibrationOptions field that affects the
/// measured tables (axes, warmup/sample counts, interferer size, seed —
/// not num_threads or cache_dir).
uint64_t CalibrationCacheKey(const BlockDevice& prototype,
                             const CalibrationOptions& options);

/// Cache file path for (prototype, options) under `dir`. The key is part
/// of the file name, so different device parameters or options never
/// collide.
std::string CalibrationCachePath(const std::string& dir,
                                 const BlockDevice& prototype,
                                 const CalibrationOptions& options);

/// Writes `model` to `path` in the versioned cache format (a
/// "calibcache v1 <key>" header followed by CostModel::ToText()), via a
/// temporary file and rename so concurrent readers never see partial
/// content.
Status SaveCostModelCache(const std::string& path, uint64_t key,
                          const CostModel& model);

/// Reads a model written by SaveCostModelCache, verifying the format
/// version and that the stored key equals `expected_key` (stale-key
/// detection). The text round-trip is exact, so the returned tables are
/// bit-identical to the saved ones.
Result<CostModel> LoadCostModelCache(const std::string& path,
                                     uint64_t expected_key);

/// Process-wide count of grid-point measurements performed by
/// CalibrateDevice (one per (point, table) pair). Monotone; tests and
/// benches use deltas to prove that warm-cache paths measure nothing.
uint64_t CalibrationMeasurePoints();

/// A set of calibrated cost models keyed by device model name. Benchmarks
/// calibrate each distinct device type once and share the registry across
/// advisor runs.
class CostModelRegistry {
 public:
  CostModelRegistry() = default;

  /// Adds (or replaces) a model under its device_model() name.
  void Register(CostModel model);

  /// Looks up the model for a device type; nullptr if absent.
  const CostModel* Find(const std::string& device_model) const;

  /// Calibrates every distinct device model among `prototypes` and returns
  /// the populated registry. Consults the calibration cache (see
  /// CalibrationOptions::cache_dir) before measuring.
  static Result<CostModelRegistry> ForDevices(
      const std::vector<const BlockDevice*>& prototypes,
      const CalibrationOptions& options = {});

 private:
  std::map<std::string, CostModel> models_;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_CALIBRATION_H_
