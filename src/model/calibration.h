#ifndef LAYOUTDB_MODEL_CALIBRATION_H_
#define LAYOUTDB_MODEL_CALIBRATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "storage/device.h"
#include "util/units.h"

namespace ldb {

/// Calibration workload grid and sampling parameters.
struct CalibrationOptions {
  std::vector<double> size_axis = {
      static_cast<double>(4 * kKiB),   static_cast<double>(8 * kKiB),
      static_cast<double>(16 * kKiB),  static_cast<double>(32 * kKiB),
      static_cast<double>(64 * kKiB),  static_cast<double>(128 * kKiB),
      static_cast<double>(256 * kKiB), static_cast<double>(512 * kKiB),
      static_cast<double>(kMiB)};
  std::vector<double> run_axis = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<double> contention_axis = {0, 0.5, 1, 2, 4, 8, 16};
  int warmup_requests = 32;   ///< discarded before measuring
  int sample_requests = 256;  ///< measured requests per grid point
  int64_t interferer_size_bytes = 8 * kKiB;
  uint64_t seed = 1;
};

/// Builds a black-box cost model for a device type by measurement (paper
/// Section 5.2.2): for every (request size, run count, contention) grid
/// point, subjects a fresh copy of the device to a primary request stream
/// with those properties plus `contention` interfering random requests per
/// primary request, and tabulates the mean primary service time. Requests
/// are served shortest-positioning-first, mimicking a device queue under
/// concurrent load, which is what produces the paper's Figure 8 effects
/// (sequential advantage collapsing around χ=2; random cost decreasing
/// with queue depth).
Result<CostModel> CalibrateDevice(const BlockDevice& prototype,
                                  const CalibrationOptions& options = {});

/// A set of calibrated cost models keyed by device model name. Benchmarks
/// calibrate each distinct device type once and share the registry across
/// advisor runs.
class CostModelRegistry {
 public:
  CostModelRegistry() = default;

  /// Adds (or replaces) a model under its device_model() name.
  void Register(CostModel model);

  /// Looks up the model for a device type; nullptr if absent.
  const CostModel* Find(const std::string& device_model) const;

  /// Calibrates every distinct device model among `prototypes` and returns
  /// the populated registry.
  static Result<CostModelRegistry> ForDevices(
      const std::vector<const BlockDevice*>& prototypes,
      const CalibrationOptions& options = {});

 private:
  std::map<std::string, CostModel> models_;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_CALIBRATION_H_
