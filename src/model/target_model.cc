#include "model/target_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ldb {

namespace {

/// Rates below this are treated as "object not present on target".
constexpr double kRateEpsilon = 1e-12;

}  // namespace

TargetModel::TargetModel(std::vector<TargetModelInfo> targets,
                         LvmLayoutModel layout_model)
    : targets_(std::move(targets)), layout_model_(layout_model) {
  LDB_CHECK(!targets_.empty());
  for (const TargetModelInfo& t : targets_) {
    LDB_CHECK(t.cost_model != nullptr);
    LDB_CHECK_GT(t.num_members, 0);
    LDB_CHECK_GT(t.stripe_bytes, 0);
  }
}

double TargetModel::TargetUtilizationInternal(
    const WorkloadSet& workloads, const Layout& layout, int j,
    std::vector<double>* mu_i) const {
  const int n = layout.num_objects();
  const TargetModelInfo& tgt = targets_[static_cast<size_t>(j)];
  if (mu_i != nullptr) mu_i->assign(static_cast<size_t>(n), 0.0);

  // Pass 1: per-target workloads for every object present on the target.
  std::vector<PerTargetWorkload> per(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    per[static_cast<size_t>(i)] = layout_model_.Transform(
        workloads[static_cast<size_t>(i)], std::max(0.0, layout.At(i, j)));
  }

  // Pass 2: contention factors (Eq. 2) and utilizations (Eq. 1).
  double mu_j = 0.0;
  for (int i = 0; i < n; ++i) {
    const PerTargetWorkload& wij = per[static_cast<size_t>(i)];
    const double rate_ij = wij.total_rate();
    if (rate_ij <= kRateEpsilon) continue;
    const WorkloadDesc& wi = workloads[static_cast<size_t>(i)];

    // χ_ij (Eq. 2): temporally-correlated competing requests per own
    // request, plus the self-overlap extension — an object's own
    // concurrent streams compete with each other wherever the object is
    // placed, so the fitted mean concurrent-request count is added
    // directly (it does not dilute with striping: the streams follow the
    // object onto every target).
    double interfering = 0.0;
    for (int k = 0; k < n; ++k) {
      if (k == i) continue;
      const double rate_kj = per[static_cast<size_t>(k)].total_rate();
      if (rate_kj <= kRateEpsilon) continue;
      interfering += rate_kj * wi.overlap[static_cast<size_t>(k)];
    }
    const double chi =
        interfering / rate_ij + wi.overlap[static_cast<size_t>(i)];

    // Per-request member-busy-seconds, normalized by the member count so
    // the result is a utilization contribution.
    //
    // RAID0: a request of B bytes touches `involved` members, each
    // transferring ~B/involved: involved * Cost(B/involved) / k.
    // RAID1: reads land on one member (Cost(B)/k); writes go to every
    // member (k * Cost(B) / k = Cost(B)).
    // RAID5: reads stripe over the k-1 data members like RAID0; writes add
    // a parity read-modify-write (~2 extra chunk accesses per row).
    auto member_cost = [&](bool is_write, double size) {
      if (size <= 0.0) return 0.0;
      const double k = tgt.num_members;
      const double chunks =
          std::ceil(size / static_cast<double>(tgt.stripe_bytes));
      switch (tgt.raid_level) {
        case RaidLevel::kRaid1: {
          const double cost =
              tgt.cost_model->Cost(is_write, size, wij.run_count, chi);
          return is_write ? cost : cost / k;
        }
        case RaidLevel::kRaid5: {
          const double data_cols = std::max(1.0, k - 1);
          const double involved = std::min(data_cols, std::max(1.0, chunks));
          const double per_member_size = size / involved;
          double busy = involved * tgt.cost_model->Cost(is_write,
                                                        per_member_size,
                                                        wij.run_count, chi);
          if (is_write) {
            // Parity RMW: one read + one write of a chunk-sized extent on
            // the parity member per touched row.
            const double rows = std::max(1.0, chunks / data_cols);
            const double parity_size =
                std::min(size, static_cast<double>(tgt.stripe_bytes));
            busy += rows * (tgt.cost_model->Cost(false, parity_size,
                                                 wij.run_count, chi) +
                            tgt.cost_model->Cost(true, parity_size,
                                                 wij.run_count, chi));
          }
          return busy / k;
        }
        case RaidLevel::kRaid0:
          break;
      }
      const double involved = std::min(k, std::max(1.0, chunks));
      const double per_member_size = size / involved;
      return tgt.cost_model->Cost(is_write, per_member_size, wij.run_count,
                                  chi) *
             involved / k;
    };
    const double mu_ij = wij.read_rate * member_cost(false, wij.read_size) +
                         wij.write_rate * member_cost(true, wij.write_size);
    if (mu_i != nullptr) (*mu_i)[static_cast<size_t>(i)] = mu_ij;
    mu_j += mu_ij;
  }
  return mu_j;
}

double TargetModel::TargetUtilization(const WorkloadSet& workloads,
                                      const Layout& layout, int j) const {
  LDB_CHECK_GE(j, 0);
  LDB_CHECK_LT(j, num_targets());
  LDB_CHECK_EQ(workloads.size(), static_cast<size_t>(layout.num_objects()));
  return TargetUtilizationInternal(workloads, layout, j, nullptr);
}

std::vector<double> TargetModel::Utilizations(
    const WorkloadSet& workloads, const Layout& layout,
    std::vector<double>* mu_ij) const {
  const int n = layout.num_objects();
  const int m = layout.num_targets();
  LDB_CHECK_EQ(m, num_targets());
  LDB_CHECK_EQ(workloads.size(), static_cast<size_t>(n));
  if (mu_ij != nullptr) {
    mu_ij->assign(static_cast<size_t>(n) * static_cast<size_t>(m), 0.0);
  }
  std::vector<double> mu(static_cast<size_t>(m), 0.0);
  std::vector<double> mu_i;
  for (int j = 0; j < m; ++j) {
    mu[static_cast<size_t>(j)] = TargetUtilizationInternal(
        workloads, layout, j, mu_ij != nullptr ? &mu_i : nullptr);
    if (mu_ij != nullptr) {
      for (int i = 0; i < n; ++i) {
        (*mu_ij)[static_cast<size_t>(i) * static_cast<size_t>(m) +
                 static_cast<size_t>(j)] = mu_i[static_cast<size_t>(i)];
      }
    }
  }
  return mu;
}

double TargetModel::MaxUtilization(const WorkloadSet& workloads,
                                   const Layout& layout) const {
  const std::vector<double> mu = Utilizations(workloads, layout);
  return *std::max_element(mu.begin(), mu.end());
}

}  // namespace ldb
