#include "model/target_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace ldb {

namespace {

/// Rates below this are treated as "object not present on target".
constexpr double kRateEpsilon = 1e-12;

/// Stand-in for χ → ∞ when pricing the gradient of an absent object: as
/// its fraction leaves zero, a positive interference accumulator divided
/// by a vanishing own rate sends χ beyond any calibration axis, where
/// lookups clamp. Any value past the axis end prices that limit exactly.
constexpr double kClampedChi = 1e30;

}  // namespace

TargetModel::TargetModel(std::vector<TargetModelInfo> targets,
                         LvmLayoutModel layout_model)
    : targets_(std::move(targets)), layout_model_(layout_model) {
  LDB_CHECK(!targets_.empty());
  for (const TargetModelInfo& t : targets_) {
    LDB_CHECK(t.cost_model != nullptr);
    LDB_CHECK_GT(t.num_members, 0);
    LDB_CHECK_GT(t.stripe_bytes, 0);
  }
}

double TargetModel::TargetUtilizationInternal(
    const WorkloadSet& workloads, const Layout& layout, int j,
    std::vector<double>* mu_i) const {
  const int n = layout.num_objects();
  const TargetModelInfo& tgt = targets_[static_cast<size_t>(j)];
  if (mu_i != nullptr) mu_i->assign(static_cast<size_t>(n), 0.0);

  // Pass 1: per-target workloads for every object present on the target.
  std::vector<PerTargetWorkload> per(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    per[static_cast<size_t>(i)] = layout_model_.Transform(
        workloads[static_cast<size_t>(i)], std::max(0.0, layout.At(i, j)));
  }

  // Pass 2: contention factors (Eq. 2) and utilizations (Eq. 1).
  double mu_j = 0.0;
  for (int i = 0; i < n; ++i) {
    const PerTargetWorkload& wij = per[static_cast<size_t>(i)];
    const double rate_ij = wij.total_rate();
    if (rate_ij <= kRateEpsilon) continue;
    const WorkloadDesc& wi = workloads[static_cast<size_t>(i)];

    // χ_ij (Eq. 2): temporally-correlated competing requests per own
    // request, plus the self-overlap extension — an object's own
    // concurrent streams compete with each other wherever the object is
    // placed, so the fitted mean concurrent-request count is added
    // directly (it does not dilute with striping: the streams follow the
    // object onto every target).
    double interfering = 0.0;
    if (wi.has_sparse_overlap()) {
      const size_t nnz = wi.overlap_index.size();
      for (size_t s = 0; s < nnz; ++s) {
        const int k = wi.overlap_index[s];
        if (k == i) continue;
        const double rate_kj = per[static_cast<size_t>(k)].total_rate();
        if (rate_kj <= kRateEpsilon) continue;
        interfering += rate_kj * wi.overlap_value[s];
      }
    } else {
      for (int k = 0; k < n; ++k) {
        if (k == i) continue;
        const double rate_kj = per[static_cast<size_t>(k)].total_rate();
        if (rate_kj <= kRateEpsilon) continue;
        interfering += rate_kj * wi.overlap[static_cast<size_t>(k)];
      }
    }
    const double chi =
        interfering / rate_ij + wi.overlap_with(static_cast<size_t>(i));

    const double mu_ij = PerObjectUtilization(tgt, wij, chi);
    if (mu_i != nullptr) (*mu_i)[static_cast<size_t>(i)] = mu_ij;
    mu_j += mu_ij;
  }
  return mu_j;
}

double TargetModel::PerObjectUtilization(const TargetModelInfo& tgt,
                                         const PerTargetWorkload& wij,
                                         double chi) const {
  // Per-request member-busy-seconds, normalized by the member count so
  // the result is a utilization contribution.
  //
  // RAID0: a request of B bytes touches `involved` members, each
  // transferring ~B/involved: involved * Cost(B/involved) / k.
  // RAID1: reads land on one member (Cost(B)/k); writes go to every
  // member (k * Cost(B) / k = Cost(B)).
  // RAID5: reads stripe over the k-1 data members like RAID0; writes add
  // a parity read-modify-write (~2 extra chunk accesses per row).
  auto member_cost = [&](bool is_write, double size) {
    if (size <= 0.0) return 0.0;
    const double k = tgt.num_members;
    const double chunks =
        std::ceil(size / static_cast<double>(tgt.stripe_bytes));
    switch (tgt.raid_level) {
      case RaidLevel::kRaid1: {
        const double cost =
            tgt.cost_model->Cost(is_write, size, wij.run_count, chi);
        return is_write ? cost : cost / k;
      }
      case RaidLevel::kRaid5: {
        const double data_cols = std::max(1.0, k - 1);
        const double involved = std::min(data_cols, std::max(1.0, chunks));
        const double per_member_size = size / involved;
        double busy = involved * tgt.cost_model->Cost(is_write,
                                                      per_member_size,
                                                      wij.run_count, chi);
        if (is_write) {
          // Parity RMW: one read + one write of a chunk-sized extent on
          // the parity member per touched row.
          const double rows = std::max(1.0, chunks / data_cols);
          const double parity_size =
              std::min(size, static_cast<double>(tgt.stripe_bytes));
          busy += rows * (tgt.cost_model->Cost(false, parity_size,
                                               wij.run_count, chi) +
                          tgt.cost_model->Cost(true, parity_size,
                                               wij.run_count, chi));
        }
        return busy / k;
      }
      case RaidLevel::kRaid0:
        break;
    }
    const double involved = std::min(k, std::max(1.0, chunks));
    const double per_member_size = size / involved;
    return tgt.cost_model->Cost(is_write, per_member_size, wij.run_count,
                                chi) *
           involved / k;
  };
  return wij.read_rate * member_cost(false, wij.read_size) +
         wij.write_rate * member_cost(true, wij.write_size);
}

double TargetModel::TargetUtilization(const WorkloadSet& workloads,
                                      const Layout& layout, int j) const {
  LDB_CHECK_GE(j, 0);
  LDB_CHECK_LT(j, num_targets());
  LDB_CHECK_EQ(workloads.size(), static_cast<size_t>(layout.num_objects()));
  return TargetUtilizationInternal(workloads, layout, j, nullptr);
}

std::vector<double> TargetModel::Utilizations(
    const WorkloadSet& workloads, const Layout& layout,
    std::vector<double>* mu_ij) const {
  const int n = layout.num_objects();
  const int m = layout.num_targets();
  LDB_CHECK_EQ(m, num_targets());
  LDB_CHECK_EQ(workloads.size(), static_cast<size_t>(n));
  if (mu_ij != nullptr) {
    mu_ij->assign(static_cast<size_t>(n) * static_cast<size_t>(m), 0.0);
  }
  std::vector<double> mu(static_cast<size_t>(m), 0.0);
  std::vector<double> mu_i;
  for (int j = 0; j < m; ++j) {
    mu[static_cast<size_t>(j)] = TargetUtilizationInternal(
        workloads, layout, j, mu_ij != nullptr ? &mu_i : nullptr);
    if (mu_ij != nullptr) {
      for (int i = 0; i < n; ++i) {
        (*mu_ij)[static_cast<size_t>(i) * static_cast<size_t>(m) +
                 static_cast<size_t>(j)] = mu_i[static_cast<size_t>(i)];
      }
    }
  }
  return mu;
}

double TargetModel::MaxUtilization(const WorkloadSet& workloads,
                                   const Layout& layout) const {
  const std::vector<double> mu = Utilizations(workloads, layout);
  return *std::max_element(mu.begin(), mu.end());
}

namespace {

/// The incremental column-evaluation context behind
/// TargetModel::MakeColumnEvaluator.
///
/// Rebuild caches, for one target column j under a base layout:
///  * the transformed per-target workload W_kj and its rate for every
///    object k (perturbing object i leaves every other W_kj unchanged);
///  * each object's interference accumulator Σ_{l≠k} rate_lj · O_k[l] —
///    the O(N²) part of a from-scratch evaluation;
///  * each object's µ_kj, and the linear segment of µ_kj as a function of
///    its contention factor χ_k. Cost tables are multilinear over the
///    calibration grid, so with W_kj fixed µ_kj is piecewise-linear in χ
///    (constant beyond the axis ends, where lookups clamp).
///
/// WithObject(i, f) then reprices the column in O(N): object i's own term
/// is re-evaluated against the cost tables (its sizes/run count change with
/// the fraction), while every other object's term moves only through its χ,
/// which shifts by a rank-1 delta and is usually repriced by interpolating
/// the cached segment — no table lookup, no allocation.
class TargetColumnContext final : public ColumnEvaluator {
 public:
  TargetColumnContext(const TargetModel* model, const WorkloadSet* workloads,
                      int j)
      : model_(model), workloads_(workloads), j_(j) {}

  void Rebuild(const Layout& layout) override {
    const int n = layout.num_objects();
    const size_t un = static_cast<size_t>(n);
    const TargetModelInfo& tgt = model_->target_info(j_);
    EnsureOverlapCache(un);
    if (any_sparse_) EnsureTranspose(un);
    per_.resize(un);
    rate_.resize(un);
    interfering_.resize(un);
    mu_.assign(un, 0.0);
    seg_lo_.resize(un);
    seg_hi_.resize(un);
    mu_seg_lo_.resize(un);
    mu_seg_hi_.resize(un);

    for (int i = 0; i < n; ++i) {
      per_[static_cast<size_t>(i)] = model_->layout_model().Transform(
          (*workloads_)[static_cast<size_t>(i)],
          std::max(0.0, layout.At(i, j_)));
      const double r = per_[static_cast<size_t>(i)].total_rate();
      // Treat below-epsilon rates as exactly absent so rank-1 deltas match
      // the from-scratch evaluation's presence filter.
      rate_[static_cast<size_t>(i)] = r <= kRateEpsilon ? 0.0 : r;
    }

    mu_j_ = 0.0;
    for (int i = 0; i < n; ++i) {
      const size_t ui = static_cast<size_t>(i);
      const WorkloadDesc& wi = (*workloads_)[ui];
      // The interference accumulator is cached even for absent objects:
      // the solver perturbs their fraction away from zero and then needs
      // their χ without an O(N) rescan.
      double interfering = 0.0;
      if (wi.has_sparse_overlap()) {
        const size_t nnz = wi.overlap_index.size();
        for (size_t s = 0; s < nnz; ++s) {
          const int k = wi.overlap_index[s];
          if (k == i) continue;
          const double rate_kj = rate_[static_cast<size_t>(k)];
          if (rate_kj <= 0.0) continue;
          interfering += rate_kj * wi.overlap_value[s];
        }
      } else {
        for (int k = 0; k < n; ++k) {
          if (k == i) continue;
          const double rate_kj = rate_[static_cast<size_t>(k)];
          if (rate_kj <= 0.0) continue;
          interfering += rate_kj * wi.overlap[static_cast<size_t>(k)];
        }
      }
      interfering_[ui] = interfering;
      if (rate_[ui] <= 0.0) {
        seg_lo_[ui] = 0.0;
        seg_hi_[ui] = -1.0;  // empty segment: never consulted
        mu_seg_lo_[ui] = mu_seg_hi_[ui] = 0.0;
        continue;
      }
      const double chi = interfering / rate_[ui] + diag_[ui];
      mu_[ui] = model_->PerObjectUtilization(tgt, per_[ui], chi);
      mu_j_ += mu_[ui];
      CacheChiSegment(tgt, ui, chi);
    }
  }

  double Base() const override { return mu_j_; }

  double WithObject(int i, double fraction) const override {
    const size_t ui = static_cast<size_t>(i);
    const int n = static_cast<int>(rate_.size());
    const TargetModelInfo& tgt = model_->target_info(j_);
    const WorkloadDesc& wi = (*workloads_)[ui];

    const PerTargetWorkload wij =
        model_->layout_model().Transform(wi, std::max(0.0, fraction));
    double ri = wij.total_rate();
    if (ri <= kRateEpsilon) ri = 0.0;

    // Swap out object i's own term. Its request sizes and run count change
    // with the fraction, so this term needs real cost-table lookups.
    double mu = mu_j_ - mu_[ui];
    if (ri > 0.0) {
      const double chi = interfering_[ui] / ri + diag_[ui];
      mu += model_->PerObjectUtilization(tgt, wij, chi);
    }

    // Every other object's term moves only through its contention factor:
    // χ_k shifts by delta · O_k[i] / rate_k. Reprice via the cached linear
    // segment when the new χ stays inside it; fall back to a table lookup
    // when the perturbation crosses a grid cell.
    const double delta = ri - rate_[ui];
    if (delta != 0.0) {
      // Repriced delta of object k's term given its overlap-with-i weight.
      auto repriced_delta = [&](size_t uk, double o) -> double {
        const double rk = rate_[uk];
        if (rk <= 0.0 || o == 0.0) return 0.0;
        // max(0, ·): when object i is k's only interferer and delta takes
        // its rate to zero, the sum cancels to rounding residue that can
        // dip below 0 — which the cost tables reject as a domain error.
        const double chi =
            std::max(0.0, (interfering_[uk] + delta * o) / rk) + diag_[uk];
        double mu_k;
        if (chi >= seg_lo_[uk] && chi <= seg_hi_[uk]) {
          mu_k = mu_seg_lo_[uk] == mu_seg_hi_[uk]
                     ? mu_seg_lo_[uk]
                     : mu_seg_lo_[uk] + (chi - seg_lo_[uk]) /
                                            (seg_hi_[uk] - seg_lo_[uk]) *
                                            (mu_seg_hi_[uk] - mu_seg_lo_[uk]);
        } else {
          mu_k = model_->PerObjectUtilization(tgt, per_[uk], chi);
        }
        return mu_k - mu_[uk];
      };
      if (any_sparse_) {
        // Column access O_k[i] via the transposed overlap structure:
        // ascending k with zero entries dropped — the same terms the dense
        // loop's `o == 0` filter keeps, in the same order.
        for (size_t s = tr_begin_[ui]; s < tr_begin_[ui + 1]; ++s) {
          const size_t uk = static_cast<size_t>(tr_src_[s]);
          mu += repriced_delta(uk, tr_val_[s]);
        }
      } else {
        for (int k = 0; k < n; ++k) {
          if (k == i) continue;
          const size_t uk = static_cast<size_t>(k);
          mu += repriced_delta(uk, (*workloads_)[uk].overlap[ui]);
        }
      }
    }
    return mu;
  }

  // ---- Batched analytic fast path ----
  //
  // µ_j and its exact gradient in one structure-of-arrays pass:
  //
  //   µ_j = Σ_i µ_ij,   µ_ij = λ^R_ij·mcR_i + λ^W_ij·mcW_i
  //
  // where each member cost mc is a fixed linear combination of cost-table
  // lookups at (size_i, run_i(f_i), χ_i) with sizes and coefficients
  // constant in the layout (precomputed once as a query template). The
  // total derivative w.r.t. the object's own fraction f_i = L_ij splits
  // into
  //
  //   ∂µ_j/∂f_i = λ^R_i·mcR_i + λ^W_i·mcW_i            (rates scale with f)
  //             + (∂µ_ij/∂run_i) · run_i'(f_i)          (run-count branch)
  //             + (∂µ_ij/∂χ_i) · (−I_i·λ_i/r_i²)        (own χ shift)
  //             + λ_i · Σ_{k≠i} (∂µ_kj/∂χ_k)·O_k[i]/r_k (cross χ shifts)
  //
  // with λ_i the object's total rate, r_i = λ_i·f_i its on-target rate and
  // I_i its interference accumulator. The cross sum over all i is one
  // transposed overlap-matrix·vector product — the same O(N²) asymptotics
  // as one column rebuild, but a two-op inner loop over contiguous arrays.
  // All interpolator queries of the pass run through the cost model's
  // batched fused value+gradient lookups.

  bool SupportsGradient() const override { return true; }

  double Evaluate(const Layout& layout) override {
    return BatchedColumn(layout, nullptr);
  }

  double EvaluateWithGradient(const Layout& layout, double* grad) override {
    return BatchedColumn(layout, grad);
  }

  int64_t interp_queries() const override { return queries_; }

 private:
  /// Caches every object's overlap diagonal O_i[i] and whether any row uses
  /// the sparse representation. Workloads are fixed for a context's
  /// lifetime, so this runs once.
  void EnsureOverlapCache(size_t un) {
    if (diag_.size() == un) return;
    any_sparse_ = false;
    diag_.resize(un);
    for (size_t i = 0; i < un; ++i) {
      const WorkloadDesc& w = (*workloads_)[i];
      any_sparse_ = any_sparse_ || w.has_sparse_overlap();
      diag_[i] = w.overlap_with(i);
    }
  }

  /// Builds the transposed overlap structure (per column i: the source rows
  /// k ≠ i with O_k[i] ≠ 0, ascending) used by WithObject's cross loop when
  /// any row is sparse — a CSR row gives O_i[k] contiguously, but that loop
  /// needs the column O_k[i]. Dense rows contribute their nonzeros too so
  /// mixed sets work. Built once per context.
  void EnsureTranspose(size_t un) {
    if (tr_begin_.size() == un + 1) return;
    tr_begin_.assign(un + 1, 0);
    auto for_each_entry = [&](size_t k, auto&& fn) {
      const WorkloadDesc& w = (*workloads_)[k];
      if (w.has_sparse_overlap()) {
        for (size_t s = 0; s < w.overlap_index.size(); ++s) {
          const size_t i = static_cast<size_t>(w.overlap_index[s]);
          if (i != k && w.overlap_value[s] != 0.0) fn(i, w.overlap_value[s]);
        }
      } else {
        for (size_t i = 0; i < w.overlap.size(); ++i) {
          if (i != k && w.overlap[i] != 0.0) fn(i, w.overlap[i]);
        }
      }
    };
    for (size_t k = 0; k < un; ++k) {
      for_each_entry(k, [&](size_t i, double) { ++tr_begin_[i + 1]; });
    }
    for (size_t i = 0; i < un; ++i) tr_begin_[i + 1] += tr_begin_[i];
    tr_src_.resize(tr_begin_[un]);
    tr_val_.resize(tr_begin_[un]);
    std::vector<size_t> cursor(tr_begin_.begin(), tr_begin_.end() - 1);
    for (size_t k = 0; k < un; ++k) {
      for_each_entry(k, [&](size_t i, double v) {
        tr_src_[cursor[i]] = static_cast<int32_t>(k);
        tr_val_[cursor[i]] = v;
        ++cursor[i];
      });
    }
  }

  /// Caches the χ-segment of object `ui`'s µ as (lo, hi, µ(lo), µ(hi)).
  /// Beyond the axis ends lookups clamp, so those segments are flat.
  void CacheChiSegment(const TargetModelInfo& tgt, size_t ui, double chi) {
    const std::vector<double>& axis = tgt.cost_model->contention_axis();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (axis.size() < 2 || chi >= axis.back()) {
      seg_lo_[ui] = axis.size() < 2 ? -kInf : axis.back();
      seg_hi_[ui] = kInf;
      mu_seg_lo_[ui] = mu_seg_hi_[ui] = mu_[ui];
      return;
    }
    if (chi <= axis.front()) {
      seg_lo_[ui] = -kInf;
      seg_hi_[ui] = axis.front();
      mu_seg_lo_[ui] = mu_seg_hi_[ui] = mu_[ui];
      return;
    }
    const auto it = std::upper_bound(axis.begin(), axis.end(), chi);
    const size_t hi = static_cast<size_t>(it - axis.begin());
    seg_lo_[ui] = axis[hi - 1];
    seg_hi_[ui] = axis[hi];
    mu_seg_lo_[ui] = model_->PerObjectUtilization(tgt, per_[ui], seg_lo_[ui]);
    mu_seg_hi_[ui] = model_->PerObjectUtilization(tgt, per_[ui], seg_hi_[ui]);
  }

  /// One cost-table lookup of an object's member-cost expression. Sizes
  /// and coefficients depend only on the workload and the target geometry,
  /// so the per-object lookup lists are templated once and reused by every
  /// batched pass.
  struct QueryTemplate {
    bool write_table;  ///< which cost table the lookup hits
    bool write_role;   ///< scaled by the write rate (else the read rate)
    double log2_size;  ///< member request size, log2 bytes (the size axis
                       ///< is log-domain and sizes never change, so the
                       ///< transform happens once at template build)
    double coef;       ///< member-cost coefficient (involved/k, rows/k, …)
  };

  /// Structure-of-arrays buffers for one table's queries of a pass. Size
  /// and run coordinates are kept in the cost tables' log2 domain; the raw
  /// run count rides along only for the d_run chain rule.
  struct QueryBatch {
    std::vector<double> log2_size, log2_run, run, chi, coef, cost, d_run,
        d_chi;
    std::vector<int> obj;
    std::vector<char> role;  // 1 = write-role

    void Clear() {
      log2_size.clear();
      log2_run.clear();
      run.clear();
      chi.clear();
      coef.clear();
      obj.clear();
      role.clear();
    }
  };

  /// Mirrors PerObjectUtilization's member_cost structure into per-object
  /// query templates (one flattened list, per-object spans in
  /// tmpl_begin_).
  void BuildQueryTemplate(const TargetModelInfo& tgt, size_t un) {
    tmpl_.clear();
    tmpl_begin_.assign(un + 1, 0);
    const double k = tgt.num_members;
    const double stripe = static_cast<double>(tgt.stripe_bytes);
    for (size_t i = 0; i < un; ++i) {
      const WorkloadDesc& w = (*workloads_)[i];
      for (int dir = 0; dir < 2; ++dir) {
        const bool write = dir == 1;
        const double rate = write ? w.write_rate : w.read_rate;
        const double size = write ? w.write_size : w.read_size;
        // A zero-rate direction multiplies out of the value and of every
        // gradient term; a zero-size request costs nothing (member_cost).
        if (rate <= 0.0 || size <= 0.0) continue;
        const double chunks = std::ceil(size / stripe);
        switch (tgt.raid_level) {
          case RaidLevel::kRaid1:
            tmpl_.push_back(
                {write, write, std::log2(size), write ? 1.0 : 1.0 / k});
            break;
          case RaidLevel::kRaid5: {
            const double data_cols = std::max(1.0, k - 1);
            const double involved = std::min(data_cols, std::max(1.0, chunks));
            tmpl_.push_back(
                {write, write, std::log2(size / involved), involved / k});
            if (write) {
              const double rows = std::max(1.0, chunks / data_cols);
              const double parity_size = std::min(size, stripe);
              tmpl_.push_back({false, true, std::log2(parity_size), rows / k});
              tmpl_.push_back({true, true, std::log2(parity_size), rows / k});
            }
            break;
          }
          case RaidLevel::kRaid0: {
            const double involved = std::min(k, std::max(1.0, chunks));
            tmpl_.push_back(
                {write, write, std::log2(size / involved), involved / k});
            break;
          }
        }
      }
      tmpl_begin_[i + 1] = tmpl_.size();
    }
  }

  /// Transform's run count in the fraction → 0+ limit: the round-robin
  /// split branch (run ∝ fraction) is unreachable there, leaving the
  /// constant branches.
  double LimitRunCount(const WorkloadDesc& w) const {
    const double stripe =
        static_cast<double>(model_->layout_model().stripe_bytes());
    const double b = w.mean_size();
    double run = w.run_count;
    if (b > 0.0 && w.run_count * b >= stripe) run = stripe / b;
    return run < 1.0 ? 1.0 : run;
  }

  /// The shared batched kernel: µ_j(layout), plus grad[i] = ∂µ_j/∂L_ij
  /// when `grad` is non-null. Independent of (and harmless to) the
  /// incremental Rebuild/WithObject state.
  double BatchedColumn(const Layout& layout, double* grad) {
    const int n = layout.num_objects();
    const size_t un = static_cast<size_t>(n);
    const TargetModelInfo& tgt = model_->target_info(j_);
    EnsureOverlapCache(un);
    if (tmpl_begin_.size() != un + 1) BuildQueryTemplate(tgt, un);

    bper_.resize(un);
    bfrac_.resize(un);
    brate_.resize(un);
    binterf_.resize(un);
    for (size_t i = 0; i < un; ++i) {
      bfrac_[i] = std::max(0.0, layout.At(static_cast<int>(i), j_));
      bper_[i] =
          model_->layout_model().Transform((*workloads_)[i], bfrac_[i]);
      const double r = bper_[i].total_rate();
      brate_[i] = r <= kRateEpsilon ? 0.0 : r;
    }

    // Interference accumulators: one contiguous overlap-row · rate dot
    // product per object — the column's O(N²) work, shaped so the
    // compiler can vectorize it. The value-only pass skips absent rows;
    // the gradient pass needs every row (an absent object's χ limit
    // depends on whether anything interferes with it).
    const double* rate = brate_.data();
    for (size_t i = 0; i < un; ++i) {
      if (grad == nullptr && rate[i] <= 0.0) {
        binterf_[i] = 0.0;
        continue;
      }
      const WorkloadDesc& wi = (*workloads_)[i];
      // Four fixed-order accumulator lanes: reassociates the sum the same
      // way on every run and thread count, and gives the compiler
      // independent chains to turn into vector FMAs (the sparse row's
      // rate gathers included).
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      double dot;
      if (wi.has_sparse_overlap()) {
        const int32_t* idx = wi.overlap_index.data();
        const double* val = wi.overlap_value.data();
        const size_t nnz = wi.overlap_index.size();
        size_t s = 0;
        for (; s + 4 <= nnz; s += 4) {
          acc0 += rate[idx[s]] * val[s];
          acc1 += rate[idx[s + 1]] * val[s + 1];
          acc2 += rate[idx[s + 2]] * val[s + 2];
          acc3 += rate[idx[s + 3]] * val[s + 3];
        }
        dot = (acc0 + acc1) + (acc2 + acc3);
        for (; s < nnz; ++s) dot += rate[idx[s]] * val[s];
      } else {
        const double* o = wi.overlap.data();
        size_t k = 0;
        for (; k + 4 <= un; k += 4) {
          acc0 += rate[k] * o[k];
          acc1 += rate[k + 1] * o[k + 1];
          acc2 += rate[k + 2] * o[k + 2];
          acc3 += rate[k + 3] * o[k + 3];
        }
        dot = (acc0 + acc1) + (acc2 + acc3);
        for (; k < un; ++k) dot += rate[k] * o[k];
      }
      // Both representations carry the diagonal; subtracting it afterwards
      // keeps the lane assignment independent of where it sits in the row.
      // The short sparse sums can leave a tiny negative residue after the
      // cancellation — clamp it so χ never goes below the diagonal.
      binterf_[i] = std::max(0.0, dot - rate[i] * diag_[i]);
    }

    // Gather the pass's cost queries, split by lookup table.
    qb_[0].Clear();
    qb_[1].Clear();
    for (size_t i = 0; i < un; ++i) {
      const WorkloadDesc& wi = (*workloads_)[i];
      double run;
      double chi;
      if (rate[i] > 0.0) {
        run = bper_[i].run_count;
        chi = binterf_[i] / rate[i] + diag_[i];
      } else if (grad != nullptr) {
        // Fraction → 0+ limit: the rates vanish linearly, so ∂µ_ij/∂L_ij
        // tends to λ^R·mcR + λ^W·mcW priced at the limiting run count and
        // contention factor.
        run = LimitRunCount(wi);
        chi = binterf_[i] > 0.0 ? kClampedChi : diag_[i];
      } else {
        continue;  // absent objects contribute nothing to the value
      }
      const double log2_run = std::log2(run);  // once per object, not query
      for (size_t q = tmpl_begin_[i]; q < tmpl_begin_[i + 1]; ++q) {
        const QueryTemplate& t = tmpl_[q];
        QueryBatch& b = qb_[t.write_table ? 1 : 0];
        b.log2_size.push_back(t.log2_size);
        b.log2_run.push_back(log2_run);
        b.run.push_back(run);
        b.chi.push_back(chi);
        b.coef.push_back(t.coef);
        b.obj.push_back(static_cast<int>(i));
        b.role.push_back(t.write_role ? 1 : 0);
      }
    }

    // Batched fused lookups, then per-object member-cost accumulation.
    mc_read_.assign(un, 0.0);
    mc_write_.assign(un, 0.0);
    if (grad != nullptr) {
      drun_read_.assign(un, 0.0);
      drun_write_.assign(un, 0.0);
      dchi_read_.assign(un, 0.0);
      dchi_write_.assign(un, 0.0);
    }
    for (int t = 0; t < 2; ++t) {
      QueryBatch& b = qb_[t];
      const size_t count = b.log2_size.size();
      if (count == 0) continue;
      queries_ += static_cast<int64_t>(count);
      b.cost.resize(count);
      if (grad != nullptr) {
        b.d_run.resize(count);
        b.d_chi.resize(count);
        tgt.cost_model->CostWithGradBatchLog2(
            t == 1, count, b.log2_size.data(), b.log2_run.data(),
            b.run.data(), b.chi.data(), b.cost.data(), b.d_run.data(),
            b.d_chi.data());
      } else {
        tgt.cost_model->CostBatchLog2(t == 1, count, b.log2_size.data(),
                                      b.log2_run.data(), b.chi.data(),
                                      b.cost.data());
      }
      for (size_t q = 0; q < count; ++q) {
        const size_t uo = static_cast<size_t>(b.obj[q]);
        const double coef = b.coef[q];
        if (b.role[q] != 0) {
          mc_write_[uo] += coef * b.cost[q];
          if (grad != nullptr) {
            drun_write_[uo] += coef * b.d_run[q];
            dchi_write_[uo] += coef * b.d_chi[q];
          }
        } else {
          mc_read_[uo] += coef * b.cost[q];
          if (grad != nullptr) {
            drun_read_[uo] += coef * b.d_run[q];
            dchi_read_[uo] += coef * b.d_chi[q];
          }
        }
      }
    }

    double mu_j = 0.0;
    if (grad == nullptr) {
      for (size_t i = 0; i < un; ++i) {
        if (rate[i] <= 0.0) continue;
        mu_j += bper_[i].read_rate * mc_read_[i] +
                bper_[i].write_rate * mc_write_[i];
      }
      return mu_j;
    }

    // χ-slopes and their rate-normalized cross-term coefficients.
    ck_.assign(un, 0.0);
    bslope_.assign(un, 0.0);
    for (size_t i = 0; i < un; ++i) {
      if (rate[i] <= 0.0) continue;
      mu_j += bper_[i].read_rate * mc_read_[i] +
              bper_[i].write_rate * mc_write_[i];
      const double slope = bper_[i].read_rate * dchi_read_[i] +
                           bper_[i].write_rate * dchi_write_[i];
      bslope_[i] = slope;
      ck_[i] = slope / rate[i];
    }

    // Cross terms for every i at once: Σ_k c_k·O_k[i] is a transposed
    // overlap·c product; accumulating row-by-row keeps the inner loop
    // contiguous for dense rows (one fused multiply-add per element) and a
    // fixed-order scatter over sparse rows — k ascending, then row order,
    // so the accumulation order never depends on thread count.
    bcross_.assign(un, 0.0);
    double* cross = bcross_.data();
    for (size_t k = 0; k < un; ++k) {
      const double c = ck_[k];
      if (c == 0.0) continue;
      const WorkloadDesc& wk = (*workloads_)[k];
      if (wk.has_sparse_overlap()) {
        const int32_t* idx = wk.overlap_index.data();
        const double* val = wk.overlap_value.data();
        const size_t nnz = wk.overlap_index.size();
        for (size_t s = 0; s < nnz; ++s) cross[idx[s]] += c * val[s];
      } else {
        const double* o = wk.overlap.data();
        for (size_t i = 0; i < un; ++i) cross[i] += c * o[i];
      }
    }

    for (size_t i = 0; i < un; ++i) {
      const WorkloadDesc& wi = (*workloads_)[i];
      const double lam = wi.total_rate();
      double g =
          wi.read_rate * mc_read_[i] + wi.write_rate * mc_write_[i];
      g += lam * (cross[i] - ck_[i] * diag_[i]);
      if (rate[i] > 0.0) {
        const double dq =
            model_->layout_model().TransformRunDerivative(wi, bfrac_[i]);
        if (dq != 0.0) {
          g += (bper_[i].read_rate * drun_read_[i] +
                bper_[i].write_rate * drun_write_[i]) *
               dq;
        }
        g += bslope_[i] * (-binterf_[i] * lam / (rate[i] * rate[i]));
      }
      grad[i] = g;
    }
    return mu_j;
  }

  const TargetModel* model_;
  const WorkloadSet* workloads_;
  const int j_;

  // Representation caches shared by every pass (built once per context).
  bool any_sparse_ = false;
  std::vector<double> diag_;
  std::vector<size_t> tr_begin_;
  std::vector<int32_t> tr_src_;
  std::vector<double> tr_val_;

  std::vector<PerTargetWorkload> per_;
  std::vector<double> rate_;
  std::vector<double> interfering_;
  std::vector<double> mu_;
  std::vector<double> seg_lo_, seg_hi_;
  std::vector<double> mu_seg_lo_, mu_seg_hi_;
  double mu_j_ = 0.0;

  // Batched-pass state: the query template and the reused scratch buffers
  // (separate from the incremental caches above — the two paths never
  // disturb each other).
  std::vector<QueryTemplate> tmpl_;
  std::vector<size_t> tmpl_begin_;
  QueryBatch qb_[2];  // [0] read table, [1] write table
  std::vector<PerTargetWorkload> bper_;
  std::vector<double> bfrac_, brate_, binterf_;
  std::vector<double> mc_read_, mc_write_;
  std::vector<double> drun_read_, drun_write_, dchi_read_, dchi_write_;
  std::vector<double> ck_, bslope_, bcross_;
  int64_t queries_ = 0;
};

}  // namespace

std::unique_ptr<ColumnEvaluator> TargetModel::MakeColumnEvaluator(
    const WorkloadSet& workloads, int j) const {
  LDB_CHECK_GE(j, 0);
  LDB_CHECK_LT(j, num_targets());
  return std::make_unique<TargetColumnContext>(this, &workloads, j);
}

}  // namespace ldb
