#include "model/target_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace ldb {

namespace {

/// Rates below this are treated as "object not present on target".
constexpr double kRateEpsilon = 1e-12;

}  // namespace

TargetModel::TargetModel(std::vector<TargetModelInfo> targets,
                         LvmLayoutModel layout_model)
    : targets_(std::move(targets)), layout_model_(layout_model) {
  LDB_CHECK(!targets_.empty());
  for (const TargetModelInfo& t : targets_) {
    LDB_CHECK(t.cost_model != nullptr);
    LDB_CHECK_GT(t.num_members, 0);
    LDB_CHECK_GT(t.stripe_bytes, 0);
  }
}

double TargetModel::TargetUtilizationInternal(
    const WorkloadSet& workloads, const Layout& layout, int j,
    std::vector<double>* mu_i) const {
  const int n = layout.num_objects();
  const TargetModelInfo& tgt = targets_[static_cast<size_t>(j)];
  if (mu_i != nullptr) mu_i->assign(static_cast<size_t>(n), 0.0);

  // Pass 1: per-target workloads for every object present on the target.
  std::vector<PerTargetWorkload> per(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    per[static_cast<size_t>(i)] = layout_model_.Transform(
        workloads[static_cast<size_t>(i)], std::max(0.0, layout.At(i, j)));
  }

  // Pass 2: contention factors (Eq. 2) and utilizations (Eq. 1).
  double mu_j = 0.0;
  for (int i = 0; i < n; ++i) {
    const PerTargetWorkload& wij = per[static_cast<size_t>(i)];
    const double rate_ij = wij.total_rate();
    if (rate_ij <= kRateEpsilon) continue;
    const WorkloadDesc& wi = workloads[static_cast<size_t>(i)];

    // χ_ij (Eq. 2): temporally-correlated competing requests per own
    // request, plus the self-overlap extension — an object's own
    // concurrent streams compete with each other wherever the object is
    // placed, so the fitted mean concurrent-request count is added
    // directly (it does not dilute with striping: the streams follow the
    // object onto every target).
    double interfering = 0.0;
    for (int k = 0; k < n; ++k) {
      if (k == i) continue;
      const double rate_kj = per[static_cast<size_t>(k)].total_rate();
      if (rate_kj <= kRateEpsilon) continue;
      interfering += rate_kj * wi.overlap[static_cast<size_t>(k)];
    }
    const double chi =
        interfering / rate_ij + wi.overlap[static_cast<size_t>(i)];

    const double mu_ij = PerObjectUtilization(tgt, wij, chi);
    if (mu_i != nullptr) (*mu_i)[static_cast<size_t>(i)] = mu_ij;
    mu_j += mu_ij;
  }
  return mu_j;
}

double TargetModel::PerObjectUtilization(const TargetModelInfo& tgt,
                                         const PerTargetWorkload& wij,
                                         double chi) const {
  // Per-request member-busy-seconds, normalized by the member count so
  // the result is a utilization contribution.
  //
  // RAID0: a request of B bytes touches `involved` members, each
  // transferring ~B/involved: involved * Cost(B/involved) / k.
  // RAID1: reads land on one member (Cost(B)/k); writes go to every
  // member (k * Cost(B) / k = Cost(B)).
  // RAID5: reads stripe over the k-1 data members like RAID0; writes add
  // a parity read-modify-write (~2 extra chunk accesses per row).
  auto member_cost = [&](bool is_write, double size) {
    if (size <= 0.0) return 0.0;
    const double k = tgt.num_members;
    const double chunks =
        std::ceil(size / static_cast<double>(tgt.stripe_bytes));
    switch (tgt.raid_level) {
      case RaidLevel::kRaid1: {
        const double cost =
            tgt.cost_model->Cost(is_write, size, wij.run_count, chi);
        return is_write ? cost : cost / k;
      }
      case RaidLevel::kRaid5: {
        const double data_cols = std::max(1.0, k - 1);
        const double involved = std::min(data_cols, std::max(1.0, chunks));
        const double per_member_size = size / involved;
        double busy = involved * tgt.cost_model->Cost(is_write,
                                                      per_member_size,
                                                      wij.run_count, chi);
        if (is_write) {
          // Parity RMW: one read + one write of a chunk-sized extent on
          // the parity member per touched row.
          const double rows = std::max(1.0, chunks / data_cols);
          const double parity_size =
              std::min(size, static_cast<double>(tgt.stripe_bytes));
          busy += rows * (tgt.cost_model->Cost(false, parity_size,
                                               wij.run_count, chi) +
                          tgt.cost_model->Cost(true, parity_size,
                                               wij.run_count, chi));
        }
        return busy / k;
      }
      case RaidLevel::kRaid0:
        break;
    }
    const double involved = std::min(k, std::max(1.0, chunks));
    const double per_member_size = size / involved;
    return tgt.cost_model->Cost(is_write, per_member_size, wij.run_count,
                                chi) *
           involved / k;
  };
  return wij.read_rate * member_cost(false, wij.read_size) +
         wij.write_rate * member_cost(true, wij.write_size);
}

double TargetModel::TargetUtilization(const WorkloadSet& workloads,
                                      const Layout& layout, int j) const {
  LDB_CHECK_GE(j, 0);
  LDB_CHECK_LT(j, num_targets());
  LDB_CHECK_EQ(workloads.size(), static_cast<size_t>(layout.num_objects()));
  return TargetUtilizationInternal(workloads, layout, j, nullptr);
}

std::vector<double> TargetModel::Utilizations(
    const WorkloadSet& workloads, const Layout& layout,
    std::vector<double>* mu_ij) const {
  const int n = layout.num_objects();
  const int m = layout.num_targets();
  LDB_CHECK_EQ(m, num_targets());
  LDB_CHECK_EQ(workloads.size(), static_cast<size_t>(n));
  if (mu_ij != nullptr) {
    mu_ij->assign(static_cast<size_t>(n) * static_cast<size_t>(m), 0.0);
  }
  std::vector<double> mu(static_cast<size_t>(m), 0.0);
  std::vector<double> mu_i;
  for (int j = 0; j < m; ++j) {
    mu[static_cast<size_t>(j)] = TargetUtilizationInternal(
        workloads, layout, j, mu_ij != nullptr ? &mu_i : nullptr);
    if (mu_ij != nullptr) {
      for (int i = 0; i < n; ++i) {
        (*mu_ij)[static_cast<size_t>(i) * static_cast<size_t>(m) +
                 static_cast<size_t>(j)] = mu_i[static_cast<size_t>(i)];
      }
    }
  }
  return mu;
}

double TargetModel::MaxUtilization(const WorkloadSet& workloads,
                                   const Layout& layout) const {
  const std::vector<double> mu = Utilizations(workloads, layout);
  return *std::max_element(mu.begin(), mu.end());
}

namespace {

/// The incremental column-evaluation context behind
/// TargetModel::MakeColumnEvaluator.
///
/// Rebuild caches, for one target column j under a base layout:
///  * the transformed per-target workload W_kj and its rate for every
///    object k (perturbing object i leaves every other W_kj unchanged);
///  * each object's interference accumulator Σ_{l≠k} rate_lj · O_k[l] —
///    the O(N²) part of a from-scratch evaluation;
///  * each object's µ_kj, and the linear segment of µ_kj as a function of
///    its contention factor χ_k. Cost tables are multilinear over the
///    calibration grid, so with W_kj fixed µ_kj is piecewise-linear in χ
///    (constant beyond the axis ends, where lookups clamp).
///
/// WithObject(i, f) then reprices the column in O(N): object i's own term
/// is re-evaluated against the cost tables (its sizes/run count change with
/// the fraction), while every other object's term moves only through its χ,
/// which shifts by a rank-1 delta and is usually repriced by interpolating
/// the cached segment — no table lookup, no allocation.
class TargetColumnContext final : public ColumnEvaluator {
 public:
  TargetColumnContext(const TargetModel* model, const WorkloadSet* workloads,
                      int j)
      : model_(model), workloads_(workloads), j_(j) {}

  void Rebuild(const Layout& layout) override {
    const int n = layout.num_objects();
    const size_t un = static_cast<size_t>(n);
    const TargetModelInfo& tgt = model_->target_info(j_);
    per_.resize(un);
    rate_.resize(un);
    interfering_.resize(un);
    mu_.assign(un, 0.0);
    seg_lo_.resize(un);
    seg_hi_.resize(un);
    mu_seg_lo_.resize(un);
    mu_seg_hi_.resize(un);

    for (int i = 0; i < n; ++i) {
      per_[static_cast<size_t>(i)] = model_->layout_model().Transform(
          (*workloads_)[static_cast<size_t>(i)],
          std::max(0.0, layout.At(i, j_)));
      const double r = per_[static_cast<size_t>(i)].total_rate();
      // Treat below-epsilon rates as exactly absent so rank-1 deltas match
      // the from-scratch evaluation's presence filter.
      rate_[static_cast<size_t>(i)] = r <= kRateEpsilon ? 0.0 : r;
    }

    mu_j_ = 0.0;
    for (int i = 0; i < n; ++i) {
      const size_t ui = static_cast<size_t>(i);
      const WorkloadDesc& wi = (*workloads_)[ui];
      // The interference accumulator is cached even for absent objects:
      // the solver perturbs their fraction away from zero and then needs
      // their χ without an O(N) rescan.
      double interfering = 0.0;
      for (int k = 0; k < n; ++k) {
        if (k == i) continue;
        const double rate_kj = rate_[static_cast<size_t>(k)];
        if (rate_kj <= 0.0) continue;
        interfering += rate_kj * wi.overlap[static_cast<size_t>(k)];
      }
      interfering_[ui] = interfering;
      if (rate_[ui] <= 0.0) {
        seg_lo_[ui] = 0.0;
        seg_hi_[ui] = -1.0;  // empty segment: never consulted
        mu_seg_lo_[ui] = mu_seg_hi_[ui] = 0.0;
        continue;
      }
      const double chi = interfering / rate_[ui] + wi.overlap[ui];
      mu_[ui] = model_->PerObjectUtilization(tgt, per_[ui], chi);
      mu_j_ += mu_[ui];
      CacheChiSegment(tgt, ui, chi);
    }
  }

  double Base() const override { return mu_j_; }

  double WithObject(int i, double fraction) const override {
    const size_t ui = static_cast<size_t>(i);
    const int n = static_cast<int>(rate_.size());
    const TargetModelInfo& tgt = model_->target_info(j_);
    const WorkloadDesc& wi = (*workloads_)[ui];

    const PerTargetWorkload wij =
        model_->layout_model().Transform(wi, std::max(0.0, fraction));
    double ri = wij.total_rate();
    if (ri <= kRateEpsilon) ri = 0.0;

    // Swap out object i's own term. Its request sizes and run count change
    // with the fraction, so this term needs real cost-table lookups.
    double mu = mu_j_ - mu_[ui];
    if (ri > 0.0) {
      const double chi = interfering_[ui] / ri + wi.overlap[ui];
      mu += model_->PerObjectUtilization(tgt, wij, chi);
    }

    // Every other object's term moves only through its contention factor:
    // χ_k shifts by delta · O_k[i] / rate_k. Reprice via the cached linear
    // segment when the new χ stays inside it; fall back to a table lookup
    // when the perturbation crosses a grid cell.
    const double delta = ri - rate_[ui];
    if (delta != 0.0) {
      for (int k = 0; k < n; ++k) {
        if (k == i) continue;
        const size_t uk = static_cast<size_t>(k);
        const double rk = rate_[uk];
        if (rk <= 0.0) continue;
        const WorkloadDesc& wk = (*workloads_)[uk];
        const double o = wk.overlap[ui];
        if (o == 0.0) continue;
        const double chi =
            (interfering_[uk] + delta * o) / rk + wk.overlap[uk];
        double mu_k;
        if (chi >= seg_lo_[uk] && chi <= seg_hi_[uk]) {
          mu_k = mu_seg_lo_[uk] == mu_seg_hi_[uk]
                     ? mu_seg_lo_[uk]
                     : mu_seg_lo_[uk] + (chi - seg_lo_[uk]) /
                                            (seg_hi_[uk] - seg_lo_[uk]) *
                                            (mu_seg_hi_[uk] - mu_seg_lo_[uk]);
        } else {
          mu_k = model_->PerObjectUtilization(tgt, per_[uk], chi);
        }
        mu += mu_k - mu_[uk];
      }
    }
    return mu;
  }

 private:
  /// Caches the χ-segment of object `ui`'s µ as (lo, hi, µ(lo), µ(hi)).
  /// Beyond the axis ends lookups clamp, so those segments are flat.
  void CacheChiSegment(const TargetModelInfo& tgt, size_t ui, double chi) {
    const std::vector<double>& axis = tgt.cost_model->contention_axis();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (axis.size() < 2 || chi >= axis.back()) {
      seg_lo_[ui] = axis.size() < 2 ? -kInf : axis.back();
      seg_hi_[ui] = kInf;
      mu_seg_lo_[ui] = mu_seg_hi_[ui] = mu_[ui];
      return;
    }
    if (chi <= axis.front()) {
      seg_lo_[ui] = -kInf;
      seg_hi_[ui] = axis.front();
      mu_seg_lo_[ui] = mu_seg_hi_[ui] = mu_[ui];
      return;
    }
    const auto it = std::upper_bound(axis.begin(), axis.end(), chi);
    const size_t hi = static_cast<size_t>(it - axis.begin());
    seg_lo_[ui] = axis[hi - 1];
    seg_hi_[ui] = axis[hi];
    mu_seg_lo_[ui] = model_->PerObjectUtilization(tgt, per_[ui], seg_lo_[ui]);
    mu_seg_hi_[ui] = model_->PerObjectUtilization(tgt, per_[ui], seg_hi_[ui]);
  }

  const TargetModel* model_;
  const WorkloadSet* workloads_;
  const int j_;

  std::vector<PerTargetWorkload> per_;
  std::vector<double> rate_;
  std::vector<double> interfering_;
  std::vector<double> mu_;
  std::vector<double> seg_lo_, seg_hi_;
  std::vector<double> mu_seg_lo_, mu_seg_hi_;
  double mu_j_ = 0.0;
};

}  // namespace

std::unique_ptr<ColumnEvaluator> TargetModel::MakeColumnEvaluator(
    const WorkloadSet& workloads, int j) const {
  LDB_CHECK_GE(j, 0);
  LDB_CHECK_LT(j, num_targets());
  return std::make_unique<TargetColumnContext>(this, &workloads, j);
}

}  // namespace ldb
