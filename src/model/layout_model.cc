#include "model/layout_model.h"

#include "util/check.h"

namespace ldb {

LvmLayoutModel::LvmLayoutModel(int64_t stripe_bytes)
    : stripe_bytes_(stripe_bytes) {
  LDB_CHECK_GT(stripe_bytes_, 0);
}

PerTargetWorkload LvmLayoutModel::Transform(const WorkloadDesc& w,
                                            double fraction) const {
  LDB_CHECK_GE(fraction, 0.0);
  LDB_CHECK_LE(fraction, 1.0 + 1e-9);
  PerTargetWorkload out;
  if (fraction <= 0.0) return out;

  // Request sizes are unchanged by striping; rates scale with the fraction
  // of the object (and hence of its accesses) on this target.
  out.read_size = w.read_size;
  out.write_size = w.write_size;
  out.read_rate = w.read_rate * fraction;
  out.write_rate = w.write_rate * fraction;

  // Run count (Figure 7). A run of Q_i requests of mean size B_i covers
  // Q_i*B_i bytes:
  //  * fits within one stripe               -> stays intact: Q_i;
  //  * spans more than StripeSize/L_ij      -> split round-robin over the
  //    object's targets, this target sees its share: Q_i * L_ij;
  //  * otherwise the stripe boundary caps the run: StripeSize / B_i.
  const double stripe = static_cast<double>(stripe_bytes_);
  const double b = w.mean_size();
  if (b <= 0.0) {
    out.run_count = w.run_count;
  } else if (w.run_count * b < stripe) {
    out.run_count = w.run_count;
  } else if (w.run_count * b > stripe / fraction) {
    out.run_count = w.run_count * fraction;
  } else {
    out.run_count = stripe / b;
  }
  if (out.run_count < 1.0) out.run_count = 1.0;
  return out;
}

double LvmLayoutModel::TransformRunDerivative(const WorkloadDesc& w,
                                              double fraction) const {
  LDB_CHECK_GE(fraction, 0.0);
  LDB_CHECK_LE(fraction, 1.0 + 1e-9);
  if (fraction <= 0.0) return 0.0;
  const double stripe = static_cast<double>(stripe_bytes_);
  const double b = w.mean_size();
  // Mirror Transform's branch structure: only the round-robin split branch
  // moves with the fraction, and the clamp at 1 flattens it again.
  if (b <= 0.0) return 0.0;
  if (w.run_count * b < stripe) return 0.0;
  if (w.run_count * b > stripe / fraction) {
    return w.run_count * fraction < 1.0 ? 0.0 : w.run_count;
  }
  return 0.0;
}

}  // namespace ldb
