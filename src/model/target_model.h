#ifndef LAYOUTDB_MODEL_TARGET_MODEL_H_
#define LAYOUTDB_MODEL_TARGET_MODEL_H_

#include <memory>
#include <vector>

#include "model/column_eval.h"
#include "model/cost_model.h"
#include "model/layout.h"
#include "model/layout_model.h"
#include "model/workload.h"
#include "storage/target.h"

namespace ldb {

/// Model-side description of one storage target: which calibrated cost
/// model applies and how many member devices the target stripes over.
struct TargetModelInfo {
  const CostModel* cost_model = nullptr;
  int num_members = 1;
  /// RAID chunk size of the target (used to estimate how many members a
  /// large request touches).
  int64_t stripe_bytes = 64 * kKiB;
  /// RAID organization: RAID1 fans writes out to every member; RAID5 adds
  /// the parity read-modify-write to each written row.
  RaidLevel raid_level = RaidLevel::kRaid0;
};

/// The storage-system performance model of paper Section 5.2 (Figure 6):
/// applies the layout model to every (object, target) pair, computes the
/// contention factor χ_ij (Eq. 2), looks up per-request costs in the
/// target's calibrated cost model, and produces the per-target utilizations
///
///   µ_ij = λ^R_ij · Cost^R_j + λ^W_ij · Cost^W_j        (Eq. 1)
///   µ_j  = Σ_i µ_ij
///
/// µ_j is the quantity the layout optimizer minimizes the maximum of.
class TargetModel {
 public:
  /// \param targets one entry per storage target (cost models must outlive
  ///   this object).
  /// \param layout_model the LVM layout model (stripe size of the volume
  ///   manager implementing layouts).
  TargetModel(std::vector<TargetModelInfo> targets,
              LvmLayoutModel layout_model);

  int num_targets() const { return static_cast<int>(targets_.size()); }
  const LvmLayoutModel& layout_model() const { return layout_model_; }

  /// Computes all target utilizations µ_j under `layout`.
  ///
  /// \param workloads one description per object; overlap vectors sized N.
  /// \param mu_ij optional out-param: per-object contribution matrix,
  ///   row-major N x M (the µ_ij used by the regularizer's ordering).
  std::vector<double> Utilizations(const WorkloadSet& workloads,
                                   const Layout& layout,
                                   std::vector<double>* mu_ij = nullptr) const;

  /// Computes µ_j for a single target — the hot path for the solver's
  /// coordinate-wise finite differences, which only perturb one column.
  double TargetUtilization(const WorkloadSet& workloads, const Layout& layout,
                           int j) const;

  /// max_j µ_j, the layout problem objective.
  double MaxUtilization(const WorkloadSet& workloads,
                        const Layout& layout) const;

  /// µ_ij of one already-transformed per-target workload under contention
  /// factor `chi` (the Eq. 1 term, including the RAID member-cost
  /// accounting). Exposed for the incremental column evaluator; all
  /// utilization paths share this computation.
  double PerObjectUtilization(const TargetModelInfo& target,
                              const PerTargetWorkload& wij, double chi) const;

  const TargetModelInfo& target_info(int j) const {
    return targets_[static_cast<size_t>(j)];
  }

  /// Creates an incremental evaluator for column `j` (see
  /// model/column_eval.h). `workloads` must outlive the evaluator; call
  /// Rebuild before the first use. Evaluators are independent — the solver
  /// holds one per column and uses them concurrently.
  std::unique_ptr<ColumnEvaluator> MakeColumnEvaluator(
      const WorkloadSet& workloads, int j) const;

 private:
  /// Shared implementation: µ_j for one target, optionally with the
  /// per-object contributions µ_ij (mu_i sized N on return).
  double TargetUtilizationInternal(const WorkloadSet& workloads,
                                   const Layout& layout, int j,
                                   std::vector<double>* mu_i) const;

  std::vector<TargetModelInfo> targets_;
  LvmLayoutModel layout_model_;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_TARGET_MODEL_H_
