#ifndef LAYOUTDB_MODEL_LAYOUT_H_
#define LAYOUTDB_MODEL_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ldb {

/// A layout: the N x M matrix L of the paper (Section 3), where L[i][j] is
/// the fraction of object i assigned to storage target j.
///
/// A layout is *valid* when every row sums to 1 (integrity constraint) and
/// no target's assigned bytes exceed its capacity (capacity constraint). It
/// is *regular* (Def. 2) when, within each row, all nonzero entries are
/// equal — i.e., each object is striped evenly across a subset of targets,
/// which is what LVM-style round-robin striping can implement.
class Layout {
 public:
  /// Creates an all-zero N x M layout.
  Layout(int num_objects, int num_targets);

  int num_objects() const { return n_; }
  int num_targets() const { return m_; }

  double At(int i, int j) const { return data_[Index(i, j)]; }
  void Set(int i, int j, double v) { data_[Index(i, j)] = v; }

  /// Mutable raw row access (length M), used by the solver.
  double* Row(int i) { return &data_[Index(i, 0)]; }
  const double* Row(int i) const { return &data_[Index(i, 0)]; }

  /// Sum of row i (should be 1 for valid layouts).
  double RowSum(int i) const;

  /// Bytes of each target consumed under this layout for objects of the
  /// given sizes.
  std::vector<int64_t> BytesPerTarget(const std::vector<int64_t>& sizes) const;

  /// Checks the integrity constraint (rows sum to 1 within `tol`).
  bool SatisfiesIntegrity(double tol = 1e-6) const;

  /// Checks the capacity constraint.
  bool SatisfiesCapacity(const std::vector<int64_t>& sizes,
                         const std::vector<int64_t>& capacities) const;

  /// Valid = integrity + capacity.
  bool IsValid(const std::vector<int64_t>& sizes,
               const std::vector<int64_t>& capacities,
               double tol = 1e-6) const;

  /// True when every row's nonzero entries are equal within `tol`
  /// (paper Definition 2). Entries below `tol` count as zero.
  bool IsRegular(double tol = 1e-6) const;

  /// For a regular layout row, the list of targets holding object i
  /// (entries > tol), in target order.
  std::vector<int> TargetsOf(int i, double tol = 1e-6) const;

  /// Sets row i to a regular layout over `targets` (each gets 1/k).
  void SetRowRegular(int i, const std::vector<int>& targets);

  /// Stripe-everything-everywhere: every object spread evenly over all
  /// targets — the paper's primary baseline.
  static Layout StripeEverythingEverywhere(int num_objects, int num_targets);

  /// Renders the layout as a percentage table (objects as rows). `names`
  /// may be empty (indices are used) or one name per object.
  std::string ToString(const std::vector<std::string>& names = {}) const;

  friend bool operator==(const Layout& a, const Layout& b) {
    return a.n_ == b.n_ && a.m_ == b.m_ && a.data_ == b.data_;
  }

 private:
  size_t Index(int i, int j) const;

  int n_;
  int m_;
  std::vector<double> data_;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_LAYOUT_H_
