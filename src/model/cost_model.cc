#include "model/cost_model.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

std::vector<double> Log2Axis(const std::vector<double>& axis) {
  std::vector<double> out;
  out.reserve(axis.size());
  for (double v : axis) out.push_back(std::log2(v));
  return out;
}

}  // namespace

Result<CostModel> CostModel::Create(std::string device_model,
                                    std::vector<double> size_axis,
                                    std::vector<double> run_axis,
                                    std::vector<double> contention_axis,
                                    std::vector<double> read_costs,
                                    std::vector<double> write_costs) {
  if (device_model.empty()) {
    return Status::InvalidArgument("device model name required");
  }
  for (double s : size_axis) {
    if (s <= 0) return Status::InvalidArgument("sizes must be positive");
  }
  for (double q : run_axis) {
    if (q < 1) return Status::InvalidArgument("run counts must be >= 1");
  }
  for (double c : contention_axis) {
    if (c < 0) return Status::InvalidArgument("contention must be >= 0");
  }
  for (double v : read_costs) {
    if (!(v > 0) || !std::isfinite(v)) {
      return Status::InvalidArgument("read costs must be positive finite");
    }
  }
  for (double v : write_costs) {
    if (!(v > 0) || !std::isfinite(v)) {
      return Status::InvalidArgument("write costs must be positive finite");
    }
  }
  auto read = GridInterpolator::Create(
      {Log2Axis(size_axis), Log2Axis(run_axis), contention_axis}, read_costs);
  if (!read.ok()) return read.status();
  auto write = GridInterpolator::Create(
      {Log2Axis(size_axis), Log2Axis(run_axis), contention_axis},
      write_costs);
  if (!write.ok()) return write.status();
  return CostModel(std::move(device_model), std::move(size_axis),
                   std::move(run_axis), std::move(contention_axis),
                   std::move(read).value(), std::move(write).value());
}

CostModel::CostModel(std::string device_model, std::vector<double> size_axis,
                     std::vector<double> run_axis,
                     std::vector<double> contention_axis,
                     GridInterpolator read, GridInterpolator write)
    : device_model_(std::move(device_model)),
      size_axis_(std::move(size_axis)),
      run_axis_(std::move(run_axis)),
      contention_axis_(std::move(contention_axis)),
      read_(std::move(read)),
      write_(std::move(write)) {}

double CostModel::Cost(bool is_write, double request_size_bytes,
                       double run_count, double contention) const {
  LDB_CHECK_GT(request_size_bytes, 0.0);
  LDB_CHECK_GE(run_count, 1.0);
  LDB_CHECK_GE(contention, 0.0);
  const double point[3] = {std::log2(request_size_bytes),
                           std::log2(run_count), contention};
  return is_write ? write_.At(point, 3) : read_.At(point, 3);
}

namespace {

/// d(log2 x)/dx = 1 / (x · ln 2).
constexpr double kLn2 = 0.6931471805599453094;

}  // namespace

double CostModel::CostWithGrad(bool is_write, double request_size_bytes,
                               double run_count, double contention,
                               double* d_run, double* d_chi) const {
  LDB_CHECK_GT(request_size_bytes, 0.0);
  LDB_CHECK_GE(run_count, 1.0);
  LDB_CHECK_GE(contention, 0.0);
  const double point[3] = {std::log2(request_size_bytes),
                           std::log2(run_count), contention};
  double grad[3];
  const double cost = (is_write ? write_ : read_).AtWithGrad(point, 3, grad);
  *d_run = grad[1] / (run_count * kLn2);
  *d_chi = grad[2];
  return cost;
}

void CostModel::CostBatch(bool is_write, size_t count, const double* size,
                          const double* run, const double* chi, double* out,
                          CostBatchScratch* scratch) const {
  LDB_CHECK(scratch != nullptr);
  scratch->log2_size.resize(count);
  scratch->log2_run.resize(count);
  for (size_t q = 0; q < count; ++q) {
    scratch->log2_size[q] = std::log2(size[q]);
    scratch->log2_run[q] = std::log2(run[q]);
  }
  CostBatchLog2(is_write, count, scratch->log2_size.data(),
                scratch->log2_run.data(), chi, out);
}

void CostModel::CostBatchLog2(bool is_write, size_t count,
                              const double* log2_size, const double* log2_run,
                              const double* chi, double* out) const {
  const double* coords[3] = {log2_size, log2_run, chi};
  (is_write ? write_ : read_).AtBatch(count, coords, out);
}

void CostModel::CostWithGradBatch(bool is_write, size_t count,
                                  const double* size, const double* run,
                                  const double* chi, double* cost,
                                  double* d_run, double* d_chi,
                                  CostBatchScratch* scratch) const {
  LDB_CHECK(scratch != nullptr);
  scratch->log2_size.resize(count);
  scratch->log2_run.resize(count);
  for (size_t q = 0; q < count; ++q) {
    scratch->log2_size[q] = std::log2(size[q]);
    scratch->log2_run[q] = std::log2(run[q]);
  }
  CostWithGradBatchLog2(is_write, count, scratch->log2_size.data(),
                        scratch->log2_run.data(), run, chi, cost, d_run,
                        d_chi);
}

void CostModel::CostWithGradBatchLog2(bool is_write, size_t count,
                                      const double* log2_size,
                                      const double* log2_run,
                                      const double* run, const double* chi,
                                      double* cost, double* d_run,
                                      double* d_chi) const {
  // The size axis' partial is skipped (null grads[0]); `d_run` receives
  // the log2-run partial in place and is chain-ruled to the raw run below.
  double* grads[3] = {nullptr, d_run, d_chi};
  const double* coords[3] = {log2_size, log2_run, chi};
  (is_write ? write_ : read_).AtWithGradBatch(count, coords, cost, grads);
  for (size_t q = 0; q < count; ++q) {
    d_run[q] /= run[q] * kLn2;
  }
}

std::string CostModel::ToText() const {
  std::ostringstream out;
  out.precision(17);
  out << "costmodel v1 " << device_model_ << "\n";
  auto dump = [&out](const char* tag, const std::vector<double>& v) {
    out << tag << " " << v.size();
    for (double x : v) out << " " << x;
    out << "\n";
  };
  dump("sizes", size_axis_);
  dump("runs", run_axis_);
  dump("contention", contention_axis_);
  dump("read", read_.values());
  dump("write", write_.values());
  return out.str();
}

Result<CostModel> CostModel::FromText(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version, device;
  in >> magic >> version >> device;
  if (magic != "costmodel" || version != "v1" || device.empty()) {
    return Status::InvalidArgument("bad cost model header");
  }
  auto load = [&in](const char* tag,
                    std::vector<double>* v) -> Status {
    std::string seen;
    size_t n = 0;
    if (!(in >> seen >> n) || seen != tag) {
      return Status::InvalidArgument(
          StrFormat("bad cost model section, expected %s", tag));
    }
    v->resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (!(in >> (*v)[i])) {
        return Status::InvalidArgument("truncated cost model section");
      }
    }
    return Status::Ok();
  };
  std::vector<double> sizes, runs, chi, reads, writes;
  LDB_RETURN_IF_ERROR(load("sizes", &sizes));
  LDB_RETURN_IF_ERROR(load("runs", &runs));
  LDB_RETURN_IF_ERROR(load("contention", &chi));
  LDB_RETURN_IF_ERROR(load("read", &reads));
  LDB_RETURN_IF_ERROR(load("write", &writes));
  return Create(device, std::move(sizes), std::move(runs), std::move(chi),
                std::move(reads), std::move(writes));
}

}  // namespace ldb
