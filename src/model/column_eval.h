#ifndef LAYOUTDB_MODEL_COLUMN_EVAL_H_
#define LAYOUTDB_MODEL_COLUMN_EVAL_H_

#include <cstdint>

#include "util/check.h"

namespace ldb {

class Layout;

/// Incremental evaluator for one target utilization µ_j — the contract
/// between a performance model and the NLP solver's finite-difference hot
/// path.
///
/// The solver perturbs a single layout entry L_ij at a time (2·N·M times per
/// gradient step). A from-scratch µ_j evaluation is O(N²) because of the
/// pairwise interference term; an implementation of this interface caches
/// the per-object rates and interference accumulators of a *base* layout so
/// each perturbation becomes a rank-1 update that costs O(N).
///
/// Invariants implementations must keep:
///  * Rebuild(L) must make Base() equal a from-scratch µ_j(L) evaluation;
///  * WithObject(i, f) must equal the from-scratch µ_j of the base layout
///    with entry (i, j) replaced by f (up to floating-point rounding of the
///    reassociated sums), and must not mutate the base state — repeated
///    calls never drift;
///  * WithObject must be safe to call concurrently with other evaluators
///    (the solver uses one evaluator per column, each owned by one task).
class ColumnEvaluator {
 public:
  virtual ~ColumnEvaluator() = default;

  /// Recomputes all cached state for a new base layout (one full O(N²)
  /// column evaluation).
  virtual void Rebuild(const Layout& layout) = 0;

  /// µ_j of the base layout (cached; free).
  virtual double Base() const = 0;

  /// µ_j as if entry (i, j) of the base layout were `fraction`, every other
  /// entry unchanged. Const: the base state is not modified.
  virtual double WithObject(int i, double fraction) const = 0;

  // ---- Analytic / batched fast path (optional) ----
  //
  // Performance models whose µ_j has a closed-form gradient implement the
  // three methods below; the solver's analytic gradient mode then replaces
  // the 2·N·M finite-difference perturbations per step with one fused
  // value+gradient pass per column. Implementations batch their
  // interpolator queries over structure-of-arrays buffers, so a pass costs
  // one O(N²) interference product plus O(N) table lookups.

  /// True when Evaluate/EvaluateWithGradient are implemented. The solver
  /// checks this before entering analytic mode and silently falls back to
  /// finite differences otherwise (e.g. wrapped or derated objectives).
  virtual bool SupportsGradient() const { return false; }

  /// µ_j(layout) via the batched kernel. Pure function of `layout`: it
  /// neither reads nor disturbs the Rebuild/WithObject incremental state.
  virtual double Evaluate(const Layout& layout) {
    (void)layout;
    LDB_CHECK_MSG(false, "ColumnEvaluator::Evaluate not supported");
    return 0.0;
  }

  /// Fused pass: returns µ_j(layout) and fills grad[i] = ∂µ_j/∂L_ij for
  /// every object i (`grad` sized num_objects). At kinks of the piecewise
  /// model (clamped interpolator axes, run-count branch boundaries, the
  /// presence threshold) a valid subgradient is produced.
  virtual double EvaluateWithGradient(const Layout& layout, double* grad) {
    (void)layout;
    (void)grad;
    LDB_CHECK_MSG(false, "ColumnEvaluator::EvaluateWithGradient not supported");
    return 0.0;
  }

  /// Interpolator queries issued by the batched kernels since construction
  /// (profiling counter; 0 when unsupported).
  virtual int64_t interp_queries() const { return 0; }
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_COLUMN_EVAL_H_
