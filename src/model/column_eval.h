#ifndef LAYOUTDB_MODEL_COLUMN_EVAL_H_
#define LAYOUTDB_MODEL_COLUMN_EVAL_H_

namespace ldb {

class Layout;

/// Incremental evaluator for one target utilization µ_j — the contract
/// between a performance model and the NLP solver's finite-difference hot
/// path.
///
/// The solver perturbs a single layout entry L_ij at a time (2·N·M times per
/// gradient step). A from-scratch µ_j evaluation is O(N²) because of the
/// pairwise interference term; an implementation of this interface caches
/// the per-object rates and interference accumulators of a *base* layout so
/// each perturbation becomes a rank-1 update that costs O(N).
///
/// Invariants implementations must keep:
///  * Rebuild(L) must make Base() equal a from-scratch µ_j(L) evaluation;
///  * WithObject(i, f) must equal the from-scratch µ_j of the base layout
///    with entry (i, j) replaced by f (up to floating-point rounding of the
///    reassociated sums), and must not mutate the base state — repeated
///    calls never drift;
///  * WithObject must be safe to call concurrently with other evaluators
///    (the solver uses one evaluator per column, each owned by one task).
class ColumnEvaluator {
 public:
  virtual ~ColumnEvaluator() = default;

  /// Recomputes all cached state for a new base layout (one full O(N²)
  /// column evaluation).
  virtual void Rebuild(const Layout& layout) = 0;

  /// µ_j of the base layout (cached; free).
  virtual double Base() const = 0;

  /// µ_j as if entry (i, j) of the base layout were `fraction`, every other
  /// entry unchanged. Const: the base state is not modified.
  virtual double WithObject(int i, double fraction) const = 0;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_COLUMN_EVAL_H_
