#include "model/workload.h"

namespace ldb {

bool IsValidWorkload(const WorkloadDesc& w, size_t n, size_t self_index) {
  if (w.read_rate < 0 || w.write_rate < 0) return false;
  if (w.read_size < 0 || w.write_size < 0) return false;
  if (w.read_rate > 0 && w.read_size <= 0) return false;
  if (w.write_rate > 0 && w.write_size <= 0) return false;
  if (w.run_count < 1.0) return false;
  if (w.overlap.size() != n) return false;
  for (size_t k = 0; k < w.overlap.size(); ++k) {
    if (w.overlap[k] < 0.0) return false;
    // Off-diagonal entries are fractions; the diagonal (self-overlap) is a
    // mean concurrent-request count and may exceed 1.
    if (k != self_index && w.overlap[k] > 1.0) return false;
  }
  return true;
}

}  // namespace ldb
