#include "model/workload.h"

#include <algorithm>
#include <string>

#include "util/table.h"

namespace ldb {

namespace {

/// Returns an empty string when `w` is consistent, else a short description
/// of the first violated clause. `n` is the object count; `self_index` the
/// diagonal position (SIZE_MAX = unknown, skip diagonal-specific checks).
std::string WorkloadViolation(const WorkloadDesc& w, size_t n,
                              size_t self_index) {
  if (w.read_rate < 0 || w.write_rate < 0) return "negative request rate";
  if (w.read_size < 0 || w.write_size < 0) return "negative request size";
  if (w.read_rate > 0 && w.read_size <= 0)
    return "read_rate > 0 requires read_size > 0";
  if (w.write_rate > 0 && w.write_size <= 0)
    return "write_rate > 0 requires write_size > 0";
  if (w.run_count < 1.0) return "run_count < 1";

  const bool sparse = w.has_sparse_overlap();
  if (!sparse && !w.overlap_value.empty())
    return "overlap_value present without overlap_index";
  if (w.overlap.empty() && !sparse)
    return "no overlap row (neither dense nor sparse form present)";
  if (!w.overlap.empty() && w.overlap.size() != n)
    return StrFormat("dense overlap size %zu != object count %zu",
                     w.overlap.size(), n);
  for (size_t k = 0; k < w.overlap.size(); ++k) {
    if (w.overlap[k] < 0.0)
      return StrFormat("dense overlap[%zu] negative", k);
    // Off-diagonal entries are fractions; the diagonal (self-overlap) is a
    // mean concurrent-request count and may exceed 1.
    if (k != self_index && w.overlap[k] > 1.0)
      return StrFormat("dense overlap[%zu] > 1 off the diagonal", k);
  }

  if (sparse) {
    if (w.overlap_index.size() != w.overlap_value.size())
      return StrFormat("overlap_index size %zu != overlap_value size %zu",
                       w.overlap_index.size(), w.overlap_value.size());
    bool saw_diagonal = false;
    for (size_t j = 0; j < w.overlap_index.size(); ++j) {
      const int32_t idx = w.overlap_index[j];
      if (idx < 0 || static_cast<size_t>(idx) >= n)
        return StrFormat("overlap_index[%zu] = %d out of range [0, %zu)", j,
                         static_cast<int>(idx), n);
      if (j > 0 && idx <= w.overlap_index[j - 1])
        return StrFormat("overlap_index not sorted at entry %zu", j);
      const bool diagonal = static_cast<size_t>(idx) == self_index;
      saw_diagonal = saw_diagonal || diagonal;
      if (w.overlap_value[j] < 0.0)
        return StrFormat("overlap_value[%zu] negative", j);
      if (!diagonal && w.overlap_value[j] > 1.0)
        return StrFormat("overlap_value[%zu] > 1 off the diagonal", j);
      if (!w.overlap.empty() &&
          w.overlap_value[j] != w.overlap[static_cast<size_t>(idx)])
        return StrFormat(
            "overlap_value[%zu] disagrees with dense overlap[%d]", j,
            static_cast<int>(idx));
    }
    if (self_index != static_cast<size_t>(-1) && !saw_diagonal)
      return StrFormat("sparse row missing diagonal entry %zu", self_index);
  }
  return std::string();
}

}  // namespace

double WorkloadDesc::overlap_with(size_t k) const {
  if (has_sparse_overlap()) {
    const auto it = std::lower_bound(overlap_index.begin(),
                                     overlap_index.end(),
                                     static_cast<int32_t>(k));
    if (it == overlap_index.end() || static_cast<size_t>(*it) != k)
      return 0.0;
    return overlap_value[static_cast<size_t>(it - overlap_index.begin())];
  }
  if (k < overlap.size()) return overlap[k];
  return 0.0;
}

bool IsValidWorkload(const WorkloadDesc& w, size_t n, size_t self_index) {
  return WorkloadViolation(w, n, self_index).empty();
}

Status ValidateWorkloadSet(const WorkloadSet& ws) {
  const size_t n = ws.size();
  for (size_t i = 0; i < n; ++i) {
    const std::string what = WorkloadViolation(ws[i], n, i);
    if (!what.empty())
      return Status::InvalidArgument(
          StrFormat("workload %zu: %s", i, what.c_str()));
  }
  return Status::Ok();
}

void SparsifyOverlap(WorkloadSet* workloads, const SparsifyOptions& options) {
  const size_t n = workloads->size();
  // Scratch reused across rows: (value, index) candidates for top-k.
  std::vector<std::pair<double, int32_t>> kept;
  for (size_t i = 0; i < n; ++i) {
    WorkloadDesc& w = (*workloads)[i];
    if (w.overlap.empty()) continue;  // already sparse-only
    kept.clear();
    for (size_t k = 0; k < w.overlap.size(); ++k) {
      if (k == i) continue;
      if (w.overlap[k] > options.threshold)
        kept.emplace_back(w.overlap[k], static_cast<int32_t>(k));
    }
    if (options.top_k > 0 &&
        kept.size() > static_cast<size_t>(options.top_k)) {
      // Largest values win; ties go to the lower index so the result is
      // independent of iteration order.
      std::sort(kept.begin(), kept.end(),
                [](const std::pair<double, int32_t>& a,
                   const std::pair<double, int32_t>& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      kept.resize(static_cast<size_t>(options.top_k));
    }
    std::sort(kept.begin(), kept.end(),
              [](const std::pair<double, int32_t>& a,
                 const std::pair<double, int32_t>& b) {
                return a.second < b.second;
              });
    w.overlap_index.clear();
    w.overlap_value.clear();
    w.overlap_index.reserve(kept.size() + 1);
    w.overlap_value.reserve(kept.size() + 1);
    bool diagonal_emitted = false;
    for (const auto& [value, idx] : kept) {
      if (!diagonal_emitted && static_cast<size_t>(idx) > i) {
        w.overlap_index.push_back(static_cast<int32_t>(i));
        w.overlap_value.push_back(w.overlap[i]);
        diagonal_emitted = true;
      }
      w.overlap_index.push_back(idx);
      w.overlap_value.push_back(value);
    }
    if (!diagonal_emitted) {
      w.overlap_index.push_back(static_cast<int32_t>(i));
      w.overlap_value.push_back(w.overlap[i]);
    }
    if (!options.keep_dense) {
      w.overlap.clear();
      w.overlap.shrink_to_fit();
    }
  }
}

}  // namespace ldb
