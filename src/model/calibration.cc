#include "model/calibration.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "util/check.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/wal.h"

namespace ldb {

namespace {

std::atomic<uint64_t> g_measure_points{0};

/// Measures the mean primary-request service time at one grid point.
///
/// Each "round" consists of one primary request plus `contention`
/// interfering random requests (fractional contention accumulates across
/// rounds). The round's requests are served shortest-positioning-first
/// against the stateful device, emulating a loaded device queue; the
/// primary's own service time is recorded.
double MeasurePoint(BlockDevice* dev, double request_size, double run_count,
                    double contention, bool primary_is_write,
                    const CalibrationOptions& opts, Rng* rng) {
  g_measure_points.fetch_add(1, std::memory_order_relaxed);
  dev->Reset();
  const int64_t size = static_cast<int64_t>(request_size);
  const int64_t capacity = dev->capacity_bytes();
  LDB_CHECK_GT(capacity, size);
  const int64_t run_len = std::max<int64_t>(1, static_cast<int64_t>(run_count));

  auto random_offset = [&](int64_t req_size) {
    // Align to the request size to mimic block-aligned access.
    const int64_t slots = (capacity - req_size) / req_size;
    return rng->UniformInt(int64_t{0}, slots) * req_size;
  };

  int64_t next_offset = random_offset(size);
  int64_t run_pos = 0;
  double interferer_credit = 0.0;

  double total = 0.0;
  int measured = 0;
  const int rounds = opts.warmup_requests + opts.sample_requests;
  // Pending requests of one round with their positioning estimates; the
  // estimate is taken once when the round's queue forms (the state the
  // scheduler would order on), not re-queried after every serve, which
  // keeps the round O(B) estimate calls instead of O(B²).
  struct Pending {
    double estimate;
    uint32_t order;  ///< arrival index; primary is 0
    DeviceRequest req;
  };
  std::vector<DeviceRequest> batch;
  std::vector<Pending> pending;
  for (int round = 0; round < rounds; ++round) {
    batch.clear();
    // Primary request: continue the current sequential run or jump.
    if (run_pos >= run_len || next_offset + size > capacity) {
      next_offset = random_offset(size);
      run_pos = 0;
    }
    const DeviceRequest primary{next_offset, size, primary_is_write};
    next_offset += size;
    ++run_pos;
    batch.push_back(primary);

    // Interfering requests: `contention` random reads per primary request.
    interferer_credit += contention;
    while (interferer_credit >= 1.0) {
      batch.push_back(DeviceRequest{random_offset(opts.interferer_size_bytes),
                                    opts.interferer_size_bytes, false});
      interferer_credit -= 1.0;
    }

    // Serve the round shortest-positioning-first, breaking estimate ties
    // by arrival order; swap-remove keeps the scan cheap.
    pending.clear();
    for (size_t b = 0; b < batch.size(); ++b) {
      pending.push_back(Pending{dev->PositioningEstimate(batch[b]),
                                static_cast<uint32_t>(b), batch[b]});
    }
    while (!pending.empty()) {
      size_t best = 0;
      for (size_t b = 1; b < pending.size(); ++b) {
        if (pending[b].estimate < pending[best].estimate ||
            (pending[b].estimate == pending[best].estimate &&
             pending[b].order < pending[best].order)) {
          best = b;
        }
      }
      const double t = dev->ServiceTime(pending[best].req);
      if (pending[best].order == 0 && round >= opts.warmup_requests) {
        total += t;
        ++measured;
      }
      pending[best] = pending.back();
      pending.pop_back();
    }
  }
  LDB_CHECK_GT(measured, 0);
  return total / measured;
}

/// FNV-1a over the bytes of `text`, folded into `hash`.
uint64_t HashText(uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string KeyHex(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

/// The cache directory to use: the explicit option wins, then the
/// environment (how CI shares calibrations across jobs and runs), else
/// none.
std::string ResolveCacheDir(const CalibrationOptions& options) {
  if (!options.cache_dir.empty()) return options.cache_dir;
  const char* env = std::getenv("LDB_CALIBRATION_CACHE");
  return env == nullptr ? std::string() : std::string(env);
}

}  // namespace

Result<CostModel> CalibrateDevice(const BlockDevice& prototype,
                                  const CalibrationOptions& options) {
  if (options.size_axis.empty() || options.run_axis.empty() ||
      options.contention_axis.empty()) {
    return Status::InvalidArgument("calibration axes must be non-empty");
  }
  if (options.sample_requests <= 0) {
    return Status::InvalidArgument("sample_requests must be positive");
  }
  const size_t n_run = options.run_axis.size();
  const size_t n_chi = options.contention_axis.size();
  const size_t points = options.size_axis.size() * n_run * n_chi;
  std::vector<double> read_costs(points), write_costs(points);

  // One independent task per grid point: its own RNG stream (seeded from
  // the point index, not the schedule) and a device clone reset by
  // MeasurePoint, writing to index-addressed slots — the same determinism
  // discipline as the solver's parallel paths, so the tables are
  // bit-identical for every thread count.
  auto measure = [&](BlockDevice* dev, size_t p) {
    const double size = options.size_axis[p / (n_run * n_chi)];
    const double run = options.run_axis[(p / n_chi) % n_run];
    const double chi = options.contention_axis[p % n_chi];
    Rng rng(MixSeed(options.seed, p));
    read_costs[p] = MeasurePoint(dev, size, run, chi, false, options, &rng);
    write_costs[p] = MeasurePoint(dev, size, run, chi, true, options, &rng);
  };

  const int threads = std::min<int64_t>(
      ThreadPool::EffectiveThreads(options.num_threads),
      static_cast<int64_t>(points));
  if (threads <= 1) {
    std::unique_ptr<BlockDevice> dev = prototype.Clone();
    for (size_t p = 0; p < points; ++p) measure(dev.get(), p);
  } else {
    std::vector<std::unique_ptr<BlockDevice>> devs(
        static_cast<size_t>(threads));
    for (auto& dev : devs) dev = prototype.Clone();
    ThreadPool pool(threads);
    pool.ParallelFor(static_cast<int64_t>(points),
                     [&](int rank, int64_t p) {
                       measure(devs[static_cast<size_t>(rank)].get(),
                               static_cast<size_t>(p));
                     });
  }
  return CostModel::Create(prototype.model_name(), options.size_axis,
                           options.run_axis, options.contention_axis,
                           std::move(read_costs), std::move(write_costs));
}

uint64_t CalibrationCacheKey(const BlockDevice& prototype,
                             const CalibrationOptions& options) {
  std::ostringstream text;
  text.precision(17);
  text << "calib-v1|" << prototype.ParamsText() << "|sizes";
  for (double v : options.size_axis) text << " " << v;
  text << "|runs";
  for (double v : options.run_axis) text << " " << v;
  text << "|chi";
  for (double v : options.contention_axis) text << " " << v;
  text << "|warmup " << options.warmup_requests << "|samples "
       << options.sample_requests << "|intf " << options.interferer_size_bytes
       << "|seed " << options.seed;
  return HashText(14695981039346656037ULL, text.str());
}

std::string CalibrationCachePath(const std::string& dir,
                                 const BlockDevice& prototype,
                                 const CalibrationOptions& options) {
  return dir + "/" + prototype.model_name() + "-" +
         KeyHex(CalibrationCacheKey(prototype, options)) + ".costmodel";
}

Status SaveCostModelCache(const std::string& path, uint64_t key,
                          const CostModel& model) {
  // Concurrent savers of the same key write identical bytes, so the only
  // in-process hazard is a reader seeing a partial file; the durable
  // write (tmp + fsync + rename + parent-dir fsync) also rules out a
  // crash leaving a zero-length cache that silently forces recalibration.
  return WriteFileDurable(path,
                          "calibcache v1 " + KeyHex(key) + "\n" +
                              model.ToText());
}

Result<CostModel> LoadCostModelCache(const std::string& path,
                                     uint64_t expected_key) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("no calibration cache file " + path);
  }
  std::string magic, version, key_hex;
  if (!(in >> magic >> version >> key_hex) || magic != "calibcache" ||
      version != "v1") {
    return Status::InvalidArgument("bad calibration cache header in " + path);
  }
  if (key_hex != KeyHex(expected_key)) {
    return Status::NotFound("stale calibration cache key in " + path);
  }
  in.ignore(1);  // the newline ending the header
  std::ostringstream body;
  body << in.rdbuf();
  return CostModel::FromText(body.str());
}

Result<CostModel> CalibrateDeviceCached(const BlockDevice& prototype,
                                        const CalibrationOptions& options) {
  const std::string dir = ResolveCacheDir(options);
  if (dir.empty()) return CalibrateDevice(prototype, options);
  const uint64_t key = CalibrationCacheKey(prototype, options);
  const std::string path = CalibrationCachePath(dir, prototype, options);
  auto cached = LoadCostModelCache(path, key);
  if (cached.ok()) return cached;
  auto model = CalibrateDevice(prototype, options);
  if (!model.ok()) return model;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  // Failure to persist only costs a future recalibration.
  (void)SaveCostModelCache(path, key, *model);
  return model;
}

uint64_t CalibrationMeasurePoints() {
  return g_measure_points.load(std::memory_order_relaxed);
}

void CostModelRegistry::Register(CostModel model) {
  const std::string name = model.device_model();
  models_.erase(name);
  models_.emplace(name, std::move(model));
}

const CostModel* CostModelRegistry::Find(
    const std::string& device_model) const {
  const auto it = models_.find(device_model);
  return it == models_.end() ? nullptr : &it->second;
}

Result<CostModelRegistry> CostModelRegistry::ForDevices(
    const std::vector<const BlockDevice*>& prototypes,
    const CalibrationOptions& options) {
  CostModelRegistry registry;
  for (const BlockDevice* proto : prototypes) {
    if (proto == nullptr) {
      return Status::InvalidArgument("null device prototype");
    }
    if (registry.Find(proto->model_name()) != nullptr) continue;
    auto model = CalibrateDeviceCached(*proto, options);
    if (!model.ok()) return model.status();
    registry.Register(std::move(model).value());
  }
  return registry;
}

}  // namespace ldb
