#include "model/calibration.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/random.h"

namespace ldb {

namespace {

/// Measures the mean primary-request service time at one grid point.
///
/// Each "round" consists of one primary request plus `contention`
/// interfering random requests (fractional contention accumulates across
/// rounds). The round's requests are served shortest-positioning-first
/// against the stateful device, emulating a loaded device queue; the
/// primary's own service time is recorded.
double MeasurePoint(BlockDevice* dev, double request_size, double run_count,
                    double contention, bool primary_is_write,
                    const CalibrationOptions& opts, Rng* rng) {
  dev->Reset();
  const int64_t size = static_cast<int64_t>(request_size);
  const int64_t capacity = dev->capacity_bytes();
  LDB_CHECK_GT(capacity, size);
  const int64_t run_len = std::max<int64_t>(1, static_cast<int64_t>(run_count));

  auto random_offset = [&](int64_t req_size) {
    // Align to the request size to mimic block-aligned access.
    const int64_t slots = (capacity - req_size) / req_size;
    return rng->UniformInt(int64_t{0}, slots) * req_size;
  };

  int64_t next_offset = random_offset(size);
  int64_t run_pos = 0;
  double interferer_credit = 0.0;

  double total = 0.0;
  int measured = 0;
  const int rounds = opts.warmup_requests + opts.sample_requests;
  std::vector<DeviceRequest> batch;
  for (int round = 0; round < rounds; ++round) {
    batch.clear();
    // Primary request: continue the current sequential run or jump.
    if (run_pos >= run_len || next_offset + size > capacity) {
      next_offset = random_offset(size);
      run_pos = 0;
    }
    const DeviceRequest primary{next_offset, size, primary_is_write};
    next_offset += size;
    ++run_pos;
    batch.push_back(primary);

    // Interfering requests: `contention` random reads per primary request.
    interferer_credit += contention;
    while (interferer_credit >= 1.0) {
      batch.push_back(DeviceRequest{random_offset(opts.interferer_size_bytes),
                                    opts.interferer_size_bytes, false});
      interferer_credit -= 1.0;
    }

    // Serve the round shortest-positioning-first (index 0 starts as the
    // primary; track it across erasures).
    size_t primary_idx = 0;
    while (!batch.empty()) {
      size_t best = 0;
      double best_cost = dev->PositioningEstimate(batch[0]);
      for (size_t b = 1; b < batch.size(); ++b) {
        const double c = dev->PositioningEstimate(batch[b]);
        if (c < best_cost) {
          best_cost = c;
          best = b;
        }
      }
      const double t = dev->ServiceTime(batch[best]);
      if (best == primary_idx) {
        if (round >= opts.warmup_requests) {
          total += t;
          ++measured;
        }
        primary_idx = batch.size();  // served; no longer in the batch
      }
      batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(best));
      if (best < primary_idx) --primary_idx;
    }
  }
  LDB_CHECK_GT(measured, 0);
  return total / measured;
}

}  // namespace

Result<CostModel> CalibrateDevice(const BlockDevice& prototype,
                                  const CalibrationOptions& options) {
  if (options.size_axis.empty() || options.run_axis.empty() ||
      options.contention_axis.empty()) {
    return Status::InvalidArgument("calibration axes must be non-empty");
  }
  if (options.sample_requests <= 0) {
    return Status::InvalidArgument("sample_requests must be positive");
  }
  std::unique_ptr<BlockDevice> dev = prototype.Clone();
  Rng rng(options.seed);

  std::vector<double> read_costs, write_costs;
  const size_t points = options.size_axis.size() * options.run_axis.size() *
                        options.contention_axis.size();
  read_costs.reserve(points);
  write_costs.reserve(points);
  for (double size : options.size_axis) {
    for (double run : options.run_axis) {
      for (double chi : options.contention_axis) {
        read_costs.push_back(
            MeasurePoint(dev.get(), size, run, chi, false, options, &rng));
        write_costs.push_back(
            MeasurePoint(dev.get(), size, run, chi, true, options, &rng));
      }
    }
  }
  return CostModel::Create(prototype.model_name(), options.size_axis,
                           options.run_axis, options.contention_axis,
                           std::move(read_costs), std::move(write_costs));
}

void CostModelRegistry::Register(CostModel model) {
  const std::string name = model.device_model();
  models_.erase(name);
  models_.emplace(name, std::move(model));
}

const CostModel* CostModelRegistry::Find(
    const std::string& device_model) const {
  const auto it = models_.find(device_model);
  return it == models_.end() ? nullptr : &it->second;
}

Result<CostModelRegistry> CostModelRegistry::ForDevices(
    const std::vector<const BlockDevice*>& prototypes,
    const CalibrationOptions& options) {
  CostModelRegistry registry;
  for (const BlockDevice* proto : prototypes) {
    if (proto == nullptr) {
      return Status::InvalidArgument("null device prototype");
    }
    if (registry.Find(proto->model_name()) != nullptr) continue;
    auto model = CalibrateDevice(*proto, options);
    if (!model.ok()) return model.status();
    registry.Register(std::move(model).value());
  }
  return registry;
}

}  // namespace ldb
