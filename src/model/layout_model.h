#ifndef LAYOUTDB_MODEL_LAYOUT_MODEL_H_
#define LAYOUTDB_MODEL_LAYOUT_MODEL_H_

#include <cstdint>

#include "model/workload.h"
#include "util/units.h"

namespace ldb {

/// The workload parameters object i imposes on one target under a layout
/// (the W_ij of the paper). Overlap is not materialized here: per Figure 7
/// it is O_i[k] gated by co-location, which the target model applies
/// directly.
struct PerTargetWorkload {
  double read_rate = 0.0;
  double write_rate = 0.0;
  double read_size = 0.0;
  double write_size = 0.0;
  double run_count = 1.0;

  double total_rate() const { return read_rate + write_rate; }
};

/// Layout model for an LVM that stripes objects round-robin over targets
/// (paper Figure 7). Transforms an object workload W_i into the per-target
/// workload W_ij implied by assigning fraction `fraction` of the object to
/// the target.
class LvmLayoutModel {
 public:
  explicit LvmLayoutModel(int64_t stripe_bytes = kMiB);

  /// Computes W_ij for L_ij = `fraction`. A zero fraction yields an
  /// all-zero workload.
  PerTargetWorkload Transform(const WorkloadDesc& w, double fraction) const;

  /// d(run_count)/d(fraction) of Transform at `fraction` — the analytic
  /// counterpart used by the solver's closed-form gradient. The run count
  /// is piecewise in the fraction: it moves only on the round-robin-split
  /// branch (run = Q_i · L_ij) and only while the result is above the
  /// clamp at 1; every other branch is constant. At branch boundaries the
  /// slope of the branch Transform itself takes is returned — a valid
  /// subgradient.
  double TransformRunDerivative(const WorkloadDesc& w, double fraction) const;

  int64_t stripe_bytes() const { return stripe_bytes_; }

 private:
  int64_t stripe_bytes_;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_LAYOUT_MODEL_H_
