#ifndef LAYOUTDB_MODEL_COST_MODEL_H_
#define LAYOUTDB_MODEL_COST_MODEL_H_

#include <string>
#include <vector>

#include "util/interp.h"
#include "util/status.h"

namespace ldb {

/// Reusable buffers for the batched cost lookups. One instance per caller:
/// the scratch is not thread-safe, while the CostModel itself stays shared
/// and immutable.
struct CostBatchScratch {
  std::vector<double> log2_size;
  std::vector<double> log2_run;
};

/// Black-box per-request cost model for one device type (paper Section
/// 5.2.2): tabulated mean service times over a calibration grid of
/// (request size, run count, contention factor), interpolated between grid
/// points. One table for reads, one for writes.
///
/// Request size and run count are interpolated on log2 axes (their effect
/// is multiplicative); the contention factor is interpolated on its raw,
/// non-uniform axis. Queries outside the calibrated range clamp to the
/// boundary.
class CostModel {
 public:
  /// Builds a model from calibration results.
  ///
  /// \param device_model device model name this table was calibrated for.
  /// \param size_axis request sizes (bytes), strictly increasing.
  /// \param run_axis run counts, strictly increasing, starting at 1.
  /// \param contention_axis contention factors, strictly increasing from 0.
  /// \param read_costs,write_costs row-major over
  ///   (size, run, contention), in seconds per request.
  static Result<CostModel> Create(std::string device_model,
                                  std::vector<double> size_axis,
                                  std::vector<double> run_axis,
                                  std::vector<double> contention_axis,
                                  std::vector<double> read_costs,
                                  std::vector<double> write_costs);

  /// Mean service time (seconds) of a request with the given properties.
  /// `is_write` selects the table; inputs are clamped to the grid.
  double Cost(bool is_write, double request_size_bytes, double run_count,
              double contention) const;

  /// Fused value + derivative lookup: returns Cost(...) and fills the
  /// partial derivatives with respect to the *raw* run count and contention
  /// factor (the log2 run axis is chain-ruled internally). The size
  /// derivative is not exposed: request sizes are constants of the layout
  /// problem, only rates, run counts, and χ move with the layout.
  /// Derivatives are 0 along clamped axes (see GridInterpolator).
  double CostWithGrad(bool is_write, double request_size_bytes,
                      double run_count, double contention, double* d_run,
                      double* d_chi) const;

  /// Structure-of-arrays batch of Cost lookups: arrays hold `count`
  /// queries. Preconditions per query match Cost(); `scratch` carries the
  /// log2-transformed coordinates between calls so steady-state batches
  /// allocate nothing.
  void CostBatch(bool is_write, size_t count, const double* size,
                 const double* run, const double* chi, double* out,
                 CostBatchScratch* scratch) const;

  /// Batched CostWithGrad: `d_run`/`d_chi` receive per-query derivatives
  /// with respect to the raw run count and the contention factor.
  void CostWithGradBatch(bool is_write, size_t count, const double* size,
                         const double* run, const double* chi, double* cost,
                         double* d_run, double* d_chi,
                         CostBatchScratch* scratch) const;

  /// CostBatch over coordinates already in the tables' log domain:
  /// `log2_size`/`log2_run` hold log2-transformed sizes and run counts.
  /// Callers holding SoA query batches (the target model's batched column
  /// evaluator) compute log2(size) once per query template and log2(run)
  /// once per object instead of twice per query here — the transcendental
  /// transforms are a visible slice of the batched pass otherwise.
  void CostBatchLog2(bool is_write, size_t count, const double* log2_size,
                     const double* log2_run, const double* chi,
                     double* out) const;

  /// Batched CostWithGrad over log-domain coordinates. The raw `run` array
  /// is still required to chain-rule `d_run` back to the raw run count.
  void CostWithGradBatchLog2(bool is_write, size_t count,
                             const double* log2_size, const double* log2_run,
                             const double* run, const double* chi,
                             double* cost, double* d_run,
                             double* d_chi) const;

  /// Convenience wrappers matching the paper's Cost^R_j / Cost^W_j.
  double ReadCost(double size, double run, double chi) const {
    return Cost(false, size, run, chi);
  }
  double WriteCost(double size, double run, double chi) const {
    return Cost(true, size, run, chi);
  }

  const std::string& device_model() const { return device_model_; }

  /// The calibration grid's contention-factor axis. Costs are multilinear
  /// over the grid, so for fixed size and run count the cost is linear in χ
  /// between consecutive axis entries and constant beyond the last one —
  /// the structure the incremental column evaluator exploits to replace
  /// table lookups with a cached linear segment.
  const std::vector<double>& contention_axis() const {
    return contention_axis_;
  }

  /// Serializes to a plain-text format (one header line, axes, values).
  std::string ToText() const;

  /// Parses a model previously produced by ToText().
  static Result<CostModel> FromText(const std::string& text);

 private:
  CostModel(std::string device_model, std::vector<double> size_axis,
            std::vector<double> run_axis, std::vector<double> contention_axis,
            GridInterpolator read, GridInterpolator write);

  std::string device_model_;
  // Raw axes kept for serialization; interpolators hold log2 axes.
  std::vector<double> size_axis_;
  std::vector<double> run_axis_;
  std::vector<double> contention_axis_;
  GridInterpolator read_;
  GridInterpolator write_;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_COST_MODEL_H_
