#ifndef LAYOUTDB_MODEL_WORKLOAD_H_
#define LAYOUTDB_MODEL_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ldb {

/// Rome-style statistical description of one database object's I/O workload
/// (paper Figure 5). These are the W_i inputs to the layout advisor.
///
/// All rates are requests/second, sizes are bytes, and `run_count` is the
/// mean number of consecutive sequential requests between non-sequential
/// jumps (1 = fully random). `overlap[k]` in [0,1] is the fraction of this
/// workload's requests that are temporally correlated with requests of
/// workload k (O_i[k] in the paper).
///
/// The diagonal entry `overlap[i]` extends the paper's model with
/// *self-overlap*: the mean number of the object's own other requests in
/// flight when a request is issued (>= 0, unbounded). Concurrent queries
/// scanning the same table interfere with each other exactly like distinct
/// objects do, but Eq. 2 sums only k != i; the target model adds this term
/// to the contention factor.
///
/// Two overlap representations are supported:
///  - dense: `overlap` has size N (one entry per object);
///  - sparse (CSR row): `overlap_index` / `overlap_value` hold only the
///    non-negligible neighbors, with `overlap_index` strictly increasing and
///    the diagonal entry always present. At fleet scale (N = O(10k)) the
///    dense form is O(N²) across the set, so the sparse form may stand
///    alone (`overlap` empty).
/// When both are present the sparse arrays are authoritative: the target
/// model iterates them and ignores dense entries outside their support
/// (those are exactly the entries a sparsification threshold discarded).
struct WorkloadDesc {
  double read_rate = 0.0;    ///< λ^R_i
  double write_rate = 0.0;   ///< λ^W_i
  double read_size = 0.0;    ///< B^R_i (mean read request bytes)
  double write_size = 0.0;   ///< B^W_i (mean write request bytes)
  double run_count = 1.0;    ///< Q_i
  std::vector<double> overlap;  ///< O_i[k], k over all N objects (dense form)

  /// Sparse row: neighbor object ids, strictly increasing, diagonal (own id)
  /// always included. Empty means "dense form only".
  std::vector<int32_t> overlap_index;
  /// O_i[overlap_index[j]], parallel to `overlap_index`.
  std::vector<double> overlap_value;

  /// True when the sparse CSR row is present (and therefore authoritative).
  bool has_sparse_overlap() const { return !overlap_index.empty(); }

  /// O_i[k] under the active representation (binary search on the sparse
  /// row; absent sparse entries read as 0). For cold paths only — hot loops
  /// iterate the arrays directly.
  double overlap_with(size_t k) const;

  /// Total request rate λ^R + λ^W (used by the initial-layout heuristic).
  double total_rate() const { return read_rate + write_rate; }

  /// Request-rate-weighted mean request size (the B_i of Figure 7).
  double mean_size() const {
    const double rate = total_rate();
    if (rate <= 0.0) return 0.0;
    return (read_rate * read_size + write_rate * write_size) / rate;
  }
};

/// A workload set: one description per database object; dense `overlap`
/// vectors (when present) all have size N.
using WorkloadSet = std::vector<WorkloadDesc>;

/// Returns true if `w` is internally consistent (non-negative rates/sizes,
/// run_count >= 1, a dense overlap vector of size `n` and/or a well-formed
/// sparse row — sorted, in-range, diagonal present — with off-diagonal
/// entries in [0,1]). `self_index` identifies the diagonal (self-overlap)
/// entry, which may exceed 1; pass SIZE_MAX when unknown to skip the
/// diagonal-specific checks.
bool IsValidWorkload(const WorkloadDesc& w, size_t n,
                     size_t self_index = static_cast<size_t>(-1));

/// Validates every workload in `ws` (n = ws.size(), self_index = position),
/// returning InvalidArgument with a clause-indexed message ("workload 7:
/// overlap_index not sorted at entry 3") for the first violation.
Status ValidateWorkloadSet(const WorkloadSet& ws);

/// Controls SparsifyOverlap.
struct SparsifyOptions {
  /// Keep off-diagonal entries strictly greater than this. The default (0)
  /// drops exactly the zero entries, so the sparse row reproduces dense
  /// arithmetic term-for-term (adding 0.0 to a finite non-negative sum is
  /// exact in IEEE arithmetic).
  double threshold = 0.0;
  /// When > 0, keep at most this many off-diagonal neighbors per object
  /// (the largest values; ties broken toward the lower index).
  int top_k = 0;
  /// Retain the dense vectors alongside the sparse rows. Default drops
  /// them — at fleet scale they are the O(N²) memory being eliminated.
  bool keep_dense = false;
};

/// Converts each workload's dense overlap row into the sparse CSR form
/// (diagonal always kept). Workloads already in sparse-only form are left
/// untouched. Deterministic: output depends only on the input values.
void SparsifyOverlap(WorkloadSet* workloads,
                     const SparsifyOptions& options = {});

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_WORKLOAD_H_
