#ifndef LAYOUTDB_MODEL_WORKLOAD_H_
#define LAYOUTDB_MODEL_WORKLOAD_H_

#include <cstddef>
#include <vector>

namespace ldb {

/// Rome-style statistical description of one database object's I/O workload
/// (paper Figure 5). These are the W_i inputs to the layout advisor.
///
/// All rates are requests/second, sizes are bytes, and `run_count` is the
/// mean number of consecutive sequential requests between non-sequential
/// jumps (1 = fully random). `overlap[k]` in [0,1] is the fraction of this
/// workload's requests that are temporally correlated with requests of
/// workload k (O_i[k] in the paper).
///
/// The diagonal entry `overlap[i]` extends the paper's model with
/// *self-overlap*: the mean number of the object's own other requests in
/// flight when a request is issued (>= 0, unbounded). Concurrent queries
/// scanning the same table interfere with each other exactly like distinct
/// objects do, but Eq. 2 sums only k != i; the target model adds this term
/// to the contention factor.
struct WorkloadDesc {
  double read_rate = 0.0;    ///< λ^R_i
  double write_rate = 0.0;   ///< λ^W_i
  double read_size = 0.0;    ///< B^R_i (mean read request bytes)
  double write_size = 0.0;   ///< B^W_i (mean write request bytes)
  double run_count = 1.0;    ///< Q_i
  std::vector<double> overlap;  ///< O_i[k], k over all N objects

  /// Total request rate λ^R + λ^W (used by the initial-layout heuristic).
  double total_rate() const { return read_rate + write_rate; }

  /// Request-rate-weighted mean request size (the B_i of Figure 7).
  double mean_size() const {
    const double rate = total_rate();
    if (rate <= 0.0) return 0.0;
    return (read_rate * read_size + write_rate * write_size) / rate;
  }
};

/// A workload set: one description per database object; `overlap` vectors
/// all have size N.
using WorkloadSet = std::vector<WorkloadDesc>;

/// Returns true if `w` is internally consistent (non-negative rates/sizes,
/// run_count >= 1, overlap vector of size `n` with off-diagonal entries in
/// [0,1]). `self_index` identifies the diagonal (self-overlap) entry, which
/// may exceed 1; pass SIZE_MAX when unknown to skip the upper-bound check.
bool IsValidWorkload(const WorkloadDesc& w, size_t n,
                     size_t self_index = static_cast<size_t>(-1));

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_WORKLOAD_H_
