#ifndef LAYOUTDB_MODEL_CONSTRAINTS_H_
#define LAYOUTDB_MODEL_CONSTRAINTS_H_

#include <utility>
#include <vector>

#include "model/layout.h"
#include "util/status.h"

namespace ldb {

/// Administrative placement constraints (paper Section 4: "if
/// administrative constraints require certain objects to be laid out onto
/// particular targets, we can easily add such constraints to the NLP
/// problem before solving it").
///
/// Two constraint forms are supported:
///  * allowed-target restrictions — object i may only use the listed
///    targets (pinning is the single-target special case);
///  * separation — two objects must not share any target (e.g. a log kept
///    away from the data it protects).
struct PlacementConstraints {
  /// Per-object allowed targets; an empty inner vector (or an
  /// empty/absent outer vector) means "no restriction". Indexed by
  /// ObjectId when non-empty (size must then equal the object count).
  std::vector<std::vector<int>> allowed_targets;

  /// Pairs of objects that must not share any target.
  std::vector<std::pair<int, int>> separate;

  bool empty() const { return allowed_targets.empty() && separate.empty(); }

  /// Returns the allowed-target list for object `i`, or an empty vector
  /// when unrestricted.
  const std::vector<int>& AllowedFor(int i) const;

  /// Checks internal consistency against problem dimensions.
  Status Validate(int num_objects, int num_targets) const;

  /// True if `layout` satisfies every constraint (entries <= tol count as
  /// "not placed").
  bool SatisfiedBy(const Layout& layout, double tol = 1e-6) const;
};

}  // namespace ldb

#endif  // LAYOUTDB_MODEL_CONSTRAINTS_H_
