#include "model/layout.h"

#include <cmath>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

Layout::Layout(int num_objects, int num_targets)
    : n_(num_objects), m_(num_targets) {
  LDB_CHECK_GT(n_, 0);
  LDB_CHECK_GT(m_, 0);
  data_.assign(static_cast<size_t>(n_) * static_cast<size_t>(m_), 0.0);
}

size_t Layout::Index(int i, int j) const {
  LDB_CHECK_GE(i, 0);
  LDB_CHECK_LT(i, n_);
  LDB_CHECK_GE(j, 0);
  LDB_CHECK_LT(j, m_);
  return static_cast<size_t>(i) * static_cast<size_t>(m_) +
         static_cast<size_t>(j);
}

double Layout::RowSum(int i) const {
  double sum = 0.0;
  for (int j = 0; j < m_; ++j) sum += At(i, j);
  return sum;
}

std::vector<int64_t> Layout::BytesPerTarget(
    const std::vector<int64_t>& sizes) const {
  LDB_CHECK_EQ(sizes.size(), static_cast<size_t>(n_));
  std::vector<int64_t> bytes(static_cast<size_t>(m_), 0);
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < m_; ++j) {
      bytes[static_cast<size_t>(j)] += static_cast<int64_t>(
          std::ceil(At(i, j) * static_cast<double>(sizes[static_cast<size_t>(i)])));
    }
  }
  return bytes;
}

bool Layout::SatisfiesIntegrity(double tol) const {
  for (int i = 0; i < n_; ++i) {
    if (std::fabs(RowSum(i) - 1.0) > tol) return false;
    for (int j = 0; j < m_; ++j) {
      if (At(i, j) < -tol || At(i, j) > 1.0 + tol) return false;
    }
  }
  return true;
}

bool Layout::SatisfiesCapacity(const std::vector<int64_t>& sizes,
                               const std::vector<int64_t>& capacities) const {
  LDB_CHECK_EQ(capacities.size(), static_cast<size_t>(m_));
  const std::vector<int64_t> bytes = BytesPerTarget(sizes);
  for (int j = 0; j < m_; ++j) {
    if (bytes[static_cast<size_t>(j)] > capacities[static_cast<size_t>(j)]) {
      return false;
    }
  }
  return true;
}

bool Layout::IsValid(const std::vector<int64_t>& sizes,
                     const std::vector<int64_t>& capacities,
                     double tol) const {
  return SatisfiesIntegrity(tol) && SatisfiesCapacity(sizes, capacities);
}

bool Layout::IsRegular(double tol) const {
  for (int i = 0; i < n_; ++i) {
    double nonzero = -1.0;
    for (int j = 0; j < m_; ++j) {
      const double v = At(i, j);
      if (v <= tol) continue;
      if (nonzero < 0.0) {
        nonzero = v;
      } else if (std::fabs(v - nonzero) > tol) {
        return false;
      }
    }
  }
  return true;
}

std::vector<int> Layout::TargetsOf(int i, double tol) const {
  std::vector<int> targets;
  for (int j = 0; j < m_; ++j) {
    if (At(i, j) > tol) targets.push_back(j);
  }
  return targets;
}

void Layout::SetRowRegular(int i, const std::vector<int>& targets) {
  LDB_CHECK(!targets.empty());
  for (int j = 0; j < m_; ++j) Set(i, j, 0.0);
  const double share = 1.0 / static_cast<double>(targets.size());
  for (int j : targets) Set(i, j, share);
}

Layout Layout::StripeEverythingEverywhere(int num_objects, int num_targets) {
  Layout l(num_objects, num_targets);
  const double share = 1.0 / static_cast<double>(num_targets);
  for (int i = 0; i < num_objects; ++i) {
    for (int j = 0; j < num_targets; ++j) l.Set(i, j, share);
  }
  return l;
}

std::string Layout::ToString(const std::vector<std::string>& names) const {
  LDB_CHECK(names.empty() || names.size() == static_cast<size_t>(n_));
  std::vector<std::string> header{"Object"};
  for (int j = 0; j < m_; ++j) header.push_back(StrFormat("T%d", j));
  TextTable table(std::move(header));
  for (int i = 0; i < n_; ++i) {
    std::vector<std::string> row;
    row.push_back(names.empty() ? StrFormat("obj%d", i) : names[static_cast<size_t>(i)]);
    for (int j = 0; j < m_; ++j) {
      const double v = At(i, j);
      row.push_back(v <= 1e-9 ? "." : StrFormat("%.0f%%", 100.0 * v));
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace ldb
