#include "model/constraints.h"

#include <algorithm>

#include "util/table.h"

namespace ldb {

const std::vector<int>& PlacementConstraints::AllowedFor(int i) const {
  static const std::vector<int> kUnrestricted;
  if (allowed_targets.empty() ||
      static_cast<size_t>(i) >= allowed_targets.size()) {
    return kUnrestricted;
  }
  return allowed_targets[static_cast<size_t>(i)];
}

Status PlacementConstraints::Validate(int num_objects,
                                      int num_targets) const {
  if (!allowed_targets.empty() &&
      allowed_targets.size() != static_cast<size_t>(num_objects)) {
    return Status::InvalidArgument(
        "allowed_targets must be empty or have one entry per object");
  }
  for (size_t i = 0; i < allowed_targets.size(); ++i) {
    for (int j : allowed_targets[i]) {
      if (j < 0 || j >= num_targets) {
        return Status::InvalidArgument(StrFormat(
            "object %zu allows unknown target %d", i, j));
      }
    }
    std::vector<int> sorted = allowed_targets[i];
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument(
          StrFormat("object %zu lists a target twice", i));
    }
  }
  for (const auto& [a, b] : separate) {
    if (a < 0 || a >= num_objects || b < 0 || b >= num_objects) {
      return Status::InvalidArgument("separation references unknown object");
    }
    if (a == b) {
      return Status::InvalidArgument("cannot separate an object from itself");
    }
  }
  return Status::Ok();
}

bool PlacementConstraints::SatisfiedBy(const Layout& layout,
                                       double tol) const {
  for (size_t i = 0; i < allowed_targets.size(); ++i) {
    const auto& allowed = allowed_targets[i];
    if (allowed.empty()) continue;
    for (int j = 0; j < layout.num_targets(); ++j) {
      if (layout.At(static_cast<int>(i), j) > tol &&
          std::find(allowed.begin(), allowed.end(), j) == allowed.end()) {
        return false;
      }
    }
  }
  for (const auto& [a, b] : separate) {
    for (int j = 0; j < layout.num_targets(); ++j) {
      if (layout.At(a, j) > tol && layout.At(b, j) > tol) return false;
    }
  }
  return true;
}

}  // namespace ldb
