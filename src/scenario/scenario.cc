#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.h"
#include "util/random.h"
#include "util/table.h"

namespace ldb {

namespace {

Status BadNumber(const std::string& value, const std::string& key) {
  return Status::InvalidArgument(StrFormat(
      "bad number '%s' for key '%s'", value.c_str(), key.c_str()));
}

Status ParseDouble(const std::string& value, const std::string& key,
                   double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return BadNumber(value, key);
  return Status::Ok();
}

Status ParseInt(const std::string& value, const std::string& key,
                int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return BadNumber(value, key);
  return Status::Ok();
}

/// "a:b" -> [a, b). Both bounds required.
Status ParseRange(const std::string& value, int* first, int* count) {
  const size_t colon = value.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(StrFormat(
        "objects must be <first>:<end>, got '%s'", value.c_str()));
  }
  int64_t a = 0, b = 0;
  LDB_RETURN_IF_ERROR(ParseInt(value.substr(0, colon), "objects", &a));
  LDB_RETURN_IF_ERROR(ParseInt(value.substr(colon + 1), "objects", &b));
  if (a < 0 || b <= a) {
    return Status::InvalidArgument(StrFormat(
        "objects range '%s' must satisfy 0 <= first < end", value.c_str()));
  }
  *first = static_cast<int>(a);
  *count = static_cast<int>(b - a);
  return Status::Ok();
}

}  // namespace

int ScenarioSpec::FindTenant(const std::string& name) const {
  for (size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

double ScenarioSpec::DepartTime(size_t t) const {
  const double depart = tenants[t].depart_s;
  return depart > 0.0 ? depart : duration_s;
}

Status ScenarioSpec::Validate(int num_objects) const {
  if (!(duration_s > 0.0) || !std::isfinite(duration_s)) {
    return Status::InvalidArgument("scenario duration must be > 0");
  }
  if (tenants.empty()) {
    return Status::InvalidArgument("scenario has no tenants");
  }
  for (size_t i = 0; i < tenants.size(); ++i) {
    const ScenarioTenant& t = tenants[i];
    const auto fail = [&](const std::string& what) {
      return Status::InvalidArgument(StrFormat(
          "tenant '%s': %s", t.name.c_str(), what.c_str()));
    };
    if (t.name.empty()) return fail("empty name");
    for (size_t k = 0; k < i; ++k) {
      if (tenants[k].name == t.name) return fail("duplicate tenant name");
    }
    if (t.first_object < 0 || t.count < 1) return fail("bad object range");
    if (num_objects >= 0 && t.first_object + t.count > num_objects) {
      return fail(StrFormat("object range [%d,%d) exceeds catalog size %d",
                            t.first_object, t.first_object + t.count,
                            num_objects));
    }
    if (t.rate < 0.0 || !std::isfinite(t.rate)) return fail("bad rate");
    if (t.request_bytes < 1) return fail("bytes must be >= 1");
    if (t.write_fraction < 0.0 || t.write_fraction > 1.0 ||
        std::isnan(t.write_fraction)) {
      return fail("write fraction must be in [0,1]");
    }
    if (t.run_length < 1.0) return fail("runs must be >= 1");
    if (t.arrive_s < 0.0) return fail("arrive must be >= 0");
    if (t.depart_s < 0.0) return fail("depart must be >= 0");
    if (t.depart_s > 0.0 && t.depart_s <= t.arrive_s) {
      return fail("depart must be after arrive");
    }
  }
  for (const ScenarioPhase& p : phases) {
    if (p.tenant < 0 || p.tenant >= static_cast<int>(tenants.size())) {
      return Status::InvalidArgument("phase references unknown tenant");
    }
    if (!(p.end_s > p.start_s) || p.start_s < 0.0) {
      return Status::InvalidArgument(StrFormat(
          "phase on '%s': end must be after start",
          tenants[static_cast<size_t>(p.tenant)].name.c_str()));
    }
    if (!(p.multiplier > 0.0) || !std::isfinite(p.multiplier)) {
      return Status::InvalidArgument(StrFormat(
          "phase on '%s': x must be > 0",
          tenants[static_cast<size_t>(p.tenant)].name.c_str()));
    }
  }
  for (const ScenarioDrift& d : drifts) {
    if (d.tenant < 0 || d.tenant >= static_cast<int>(tenants.size())) {
      return Status::InvalidArgument("drift references unknown tenant");
    }
    const std::string& name =
        tenants[static_cast<size_t>(d.tenant)].name;
    if (!(d.end_s > d.start_s) || d.start_s < 0.0) {
      return Status::InvalidArgument(StrFormat(
          "drift on '%s': end must be after start", name.c_str()));
    }
    if (!(d.multiplier > 0.0) || !std::isfinite(d.multiplier)) {
      return Status::InvalidArgument(StrFormat(
          "drift on '%s': x must be > 0", name.c_str()));
    }
  }
  for (const ScenarioGraph& g : graphs) {
    if (g.tenant < 0 || g.tenant >= static_cast<int>(tenants.size())) {
      return Status::InvalidArgument("graph references unknown tenant");
    }
    const ScenarioTenant& t = tenants[static_cast<size_t>(g.tenant)];
    const auto fail = [&](const std::string& what) {
      return Status::InvalidArgument(StrFormat(
          "graph on '%s': %s", t.name.c_str(), what.c_str()));
    };
    if (g.communities < 1) return fail("communities must be >= 1");
    if (g.communities > t.count) {
      return fail("more communities than tenant objects");
    }
    if (g.coaccess < 0.0 || g.coaccess > 1.0 || std::isnan(g.coaccess)) {
      return fail("coaccess must be in [0,1]");
    }
    if (g.rewire_s < 0.0) return fail("rewire must be >= 0");
    if (g.burst < 1 || g.burst > t.count) {
      return fail("burst must be in [1, tenant objects]");
    }
    for (const ScenarioGraph& other : graphs) {
      if (&other != &g && other.tenant == g.tenant) {
        return fail("multiple graph clauses for one tenant");
      }
    }
  }
  return Status::Ok();
}

Result<ScenarioSpec> ParseScenarioSpec(const std::string& text) {
  ScenarioSpec spec;
  bool saw_duration = false;
  size_t pos = 0;
  int clause_index = 0;
  const auto clause_error = [&clause_index](const std::string& what) {
    return Status::InvalidArgument(StrFormat(
        "scenario spec clause %d: %s", clause_index, what.c_str()));
  };
  // Number parsing routed through clause_error so "bad number" failures
  // carry the clause index like every other clause-level error.
  const auto parse_double = [&](const std::string& value,
                                const std::string& key,
                                double* out) -> Status {
    Status s = ParseDouble(value, key, out);
    if (!s.ok()) return clause_error(std::string(s.message()));
    return Status::Ok();
  };
  const auto parse_int = [&](const std::string& value,
                             const std::string& key,
                             int64_t* out) -> Status {
    Status s = ParseInt(value, key, out);
    if (!s.ok()) return clause_error(std::string(s.message()));
    return Status::Ok();
  };
  while (pos <= text.size()) {
    const size_t clause_end = std::min(text.find(';', pos), text.size());
    const std::string clause = text.substr(pos, clause_end - pos);
    pos = clause_end + 1;
    if (clause.empty()) continue;
    ++clause_index;

    // Split the clause into key=value items.
    std::vector<std::pair<std::string, std::string>> items;
    size_t cpos = 0;
    while (cpos <= clause.size()) {
      const size_t item_end = std::min(clause.find(',', cpos), clause.size());
      const std::string item = clause.substr(cpos, item_end - cpos);
      cpos = item_end + 1;
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return clause_error(StrFormat("'%s' is not key=value",
                                      item.c_str()));
      }
      items.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
    if (items.empty()) continue;
    const std::string& kind = items[0].first;

    const auto tenant_ref = [&](const std::string& name) -> Result<int> {
      const int t = spec.FindTenant(name);
      if (t < 0) {
        return clause_error(StrFormat(
            "unknown tenant '%s' (tenants must be declared first)",
            name.c_str()));
      }
      return t;
    };

    if (kind == "duration") {
      if (items.size() != 1) {
        return clause_error("duration takes no further keys");
      }
      double dv = 0.0;
      LDB_RETURN_IF_ERROR(parse_double(items[0].second, kind, &dv));
      if (!(dv > 0.0) || !std::isfinite(dv)) {
        return clause_error("duration must be > 0");
      }
      spec.duration_s = dv;
      saw_duration = true;
    } else if (kind == "seed") {
      if (items.size() != 1) return clause_error("seed takes no further keys");
      int64_t iv = 0;
      LDB_RETURN_IF_ERROR(parse_int(items[0].second, kind, &iv));
      if (iv < 0) return clause_error("seed must be >= 0");
      spec.seed = static_cast<uint64_t>(iv);
    } else if (kind == "tenant") {
      ScenarioTenant t;
      t.name = items[0].second;
      if (t.name.empty()) return clause_error("tenant name is empty");
      if (spec.FindTenant(t.name) >= 0) {
        return clause_error(StrFormat("duplicate tenant '%s'",
                                      t.name.c_str()));
      }
      bool saw_objects = false, saw_rate = false;
      for (size_t i = 1; i < items.size(); ++i) {
        const std::string& key = items[i].first;
        const std::string& value = items[i].second;
        double dv = 0.0;
        int64_t iv = 0;
        if (key == "objects") {
          Status s = ParseRange(value, &t.first_object, &t.count);
          if (!s.ok()) return clause_error(std::string(s.message()));
          saw_objects = true;
        } else if (key == "rate") {
          LDB_RETURN_IF_ERROR(parse_double(value, key, &dv));
          if (dv < 0.0 || !std::isfinite(dv)) {
            return clause_error("rate must be >= 0");
          }
          t.rate = dv;
          saw_rate = true;
        } else if (key == "bytes") {
          LDB_RETURN_IF_ERROR(parse_int(value, key, &iv));
          if (iv < 1) return clause_error("bytes must be >= 1");
          t.request_bytes = iv;
        } else if (key == "write") {
          LDB_RETURN_IF_ERROR(parse_double(value, key, &dv));
          if (dv < 0.0 || dv > 1.0 || std::isnan(dv)) {
            return clause_error("write must be in [0,1]");
          }
          t.write_fraction = dv;
        } else if (key == "runs") {
          LDB_RETURN_IF_ERROR(parse_double(value, key, &dv));
          if (!(dv >= 1.0)) return clause_error("runs must be >= 1");
          t.run_length = dv;
        } else if (key == "arrive") {
          LDB_RETURN_IF_ERROR(parse_double(value, key, &dv));
          if (dv < 0.0) return clause_error("arrive must be >= 0");
          t.arrive_s = dv;
        } else if (key == "depart") {
          LDB_RETURN_IF_ERROR(parse_double(value, key, &dv));
          if (!(dv > 0.0)) return clause_error("depart must be > 0");
          t.depart_s = dv;
        } else {
          return clause_error(StrFormat("unknown tenant key '%s'",
                                        key.c_str()));
        }
      }
      if (!saw_objects) return clause_error("tenant needs objects=<a>:<b>");
      if (!saw_rate) return clause_error("tenant needs rate=<r>");
      spec.tenants.push_back(std::move(t));
    } else if (kind == "phase" || kind == "flash") {
      auto t = tenant_ref(items[0].second);
      if (!t.ok()) return t.status();
      ScenarioPhase p;
      p.tenant = *t;
      const bool flash = kind == "flash";
      double at = 0.0, dur = 0.0;
      bool saw_x = false, saw_a = false, saw_b = false;
      for (size_t i = 1; i < items.size(); ++i) {
        const std::string& key = items[i].first;
        double dv = 0.0;
        LDB_RETURN_IF_ERROR(parse_double(items[i].second, key, &dv));
        if (!flash && key == "start") {
          p.start_s = dv;
          saw_a = true;
        } else if (!flash && key == "end") {
          p.end_s = dv;
          saw_b = true;
        } else if (flash && key == "at") {
          at = dv;
          saw_a = true;
        } else if (flash && key == "for") {
          dur = dv;
          saw_b = true;
        } else if (key == "x") {
          if (!(dv > 0.0) || !std::isfinite(dv)) {
            return clause_error("x must be > 0");
          }
          p.multiplier = dv;
          saw_x = true;
        } else {
          return clause_error(StrFormat("unknown %s key '%s'", kind.c_str(),
                                        key.c_str()));
        }
      }
      if (!saw_a || !saw_b || !saw_x) {
        return clause_error(flash ? "flash needs at=, for=, x="
                                  : "phase needs start=, end=, x=");
      }
      if (flash) {
        if (at < 0.0 || !(dur > 0.0)) {
          return clause_error("flash needs at >= 0 and for > 0");
        }
        p.start_s = at;
        p.end_s = at + dur;
      } else if (p.start_s < 0.0 || !(p.end_s > p.start_s)) {
        return clause_error("phase needs 0 <= start < end");
      }
      spec.phases.push_back(p);
    } else if (kind == "drift") {
      auto t = tenant_ref(items[0].second);
      if (!t.ok()) return t.status();
      ScenarioDrift d;
      d.tenant = *t;
      bool saw_x = false, saw_a = false, saw_b = false;
      for (size_t i = 1; i < items.size(); ++i) {
        const std::string& key = items[i].first;
        double dv = 0.0;
        LDB_RETURN_IF_ERROR(parse_double(items[i].second, key, &dv));
        if (key == "start") {
          d.start_s = dv;
          saw_a = true;
        } else if (key == "end") {
          d.end_s = dv;
          saw_b = true;
        } else if (key == "x") {
          if (!(dv > 0.0) || !std::isfinite(dv)) {
            return clause_error("x must be > 0");
          }
          d.multiplier = dv;
          saw_x = true;
        } else {
          return clause_error(StrFormat("unknown drift key '%s'",
                                        key.c_str()));
        }
      }
      if (!saw_a || !saw_b || !saw_x) {
        return clause_error("drift needs start=, end=, x=");
      }
      if (d.start_s < 0.0 || !(d.end_s > d.start_s)) {
        return clause_error("drift needs 0 <= start < end");
      }
      spec.drifts.push_back(d);
    } else if (kind == "graph") {
      auto t = tenant_ref(items[0].second);
      if (!t.ok()) return t.status();
      ScenarioGraph g;
      g.tenant = *t;
      for (size_t i = 1; i < items.size(); ++i) {
        const std::string& key = items[i].first;
        const std::string& value = items[i].second;
        double dv = 0.0;
        int64_t iv = 0;
        if (key == "communities") {
          LDB_RETURN_IF_ERROR(parse_int(value, key, &iv));
          if (iv < 1) return clause_error("communities must be >= 1");
          g.communities = static_cast<int>(iv);
        } else if (key == "coaccess") {
          LDB_RETURN_IF_ERROR(parse_double(value, key, &dv));
          if (dv < 0.0 || dv > 1.0 || std::isnan(dv)) {
            return clause_error("coaccess must be in [0,1]");
          }
          g.coaccess = dv;
        } else if (key == "rewire") {
          LDB_RETURN_IF_ERROR(parse_double(value, key, &dv));
          if (dv < 0.0 || !std::isfinite(dv)) {
            return clause_error("rewire must be >= 0");
          }
          g.rewire_s = dv;
        } else if (key == "burst") {
          LDB_RETURN_IF_ERROR(parse_int(value, key, &iv));
          if (iv < 1) return clause_error("burst must be >= 1");
          g.burst = static_cast<int>(iv);
        } else {
          return clause_error(StrFormat("unknown graph key '%s'",
                                        key.c_str()));
        }
      }
      spec.graphs.push_back(g);
    } else {
      return clause_error(StrFormat("unknown clause kind '%s'",
                                    kind.c_str()));
    }
  }
  if (!saw_duration) {
    return Status::InvalidArgument(
        "scenario spec: missing duration=<s> clause");
  }
  LDB_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

std::string ScenarioToString(const ScenarioSpec& spec) {
  std::string out = StrFormat("duration=%g", spec.duration_s);
  if (spec.seed != 42) {
    out += StrFormat(";seed=%llu",
                     static_cast<unsigned long long>(spec.seed));
  }
  for (const ScenarioTenant& t : spec.tenants) {
    out += StrFormat(";tenant=%s,objects=%d:%d,rate=%g", t.name.c_str(),
                     t.first_object, t.first_object + t.count, t.rate);
    if (t.request_bytes != 64 * 1024) {
      out += StrFormat(",bytes=%lld",
                       static_cast<long long>(t.request_bytes));
    }
    if (t.write_fraction > 0.0) out += StrFormat(",write=%g",
                                                 t.write_fraction);
    if (t.run_length != 1.0) out += StrFormat(",runs=%g", t.run_length);
    if (t.arrive_s > 0.0) out += StrFormat(",arrive=%g", t.arrive_s);
    if (t.depart_s > 0.0) out += StrFormat(",depart=%g", t.depart_s);
  }
  for (const ScenarioPhase& p : spec.phases) {
    out += StrFormat(";phase=%s,start=%g,end=%g,x=%g",
                     spec.tenants[static_cast<size_t>(p.tenant)].name.c_str(),
                     p.start_s, p.end_s, p.multiplier);
  }
  for (const ScenarioGraph& g : spec.graphs) {
    out += StrFormat(";graph=%s,communities=%d,coaccess=%g,rewire=%g,"
                     "burst=%d",
                     spec.tenants[static_cast<size_t>(g.tenant)].name.c_str(),
                     g.communities, g.coaccess, g.rewire_s, g.burst);
  }
  for (const ScenarioDrift& d : spec.drifts) {
    out += StrFormat(";drift=%s,start=%g,end=%g,x=%g",
                     spec.tenants[static_cast<size_t>(d.tenant)].name.c_str(),
                     d.start_s, d.end_s, d.multiplier);
  }
  return out;
}

double TenantRateMultiplier(const ScenarioSpec& spec, size_t t,
                            double time_s) {
  const ScenarioTenant& tenant = spec.tenants[t];
  const double depart = spec.DepartTime(t);
  if (time_s < tenant.arrive_s || time_s >= depart) return 0.0;
  double mult = 1.0;
  const int ti = static_cast<int>(t);
  for (const ScenarioPhase& p : spec.phases) {
    if (p.tenant == ti && time_s >= p.start_s && time_s < p.end_s) {
      mult *= p.multiplier;
    }
  }
  for (const ScenarioDrift& d : spec.drifts) {
    if (d.tenant != ti || time_s < d.start_s) continue;
    if (time_s >= d.end_s) {
      mult *= d.multiplier;  // the adversarial plateau
    } else {
      const double frac = (time_s - d.start_s) / (d.end_s - d.start_s);
      mult *= std::exp(std::log(d.multiplier) * frac);
    }
  }
  return mult;
}

InteractionGraph::InteractionGraph(const ScenarioSpec& spec) : spec_(&spec) {
  int max_object = 0;
  for (const ScenarioTenant& t : spec.tenants) {
    max_object = std::max(max_object, t.first_object + t.count);
  }
  graph_of_.assign(static_cast<size_t>(max_object), -1);
  members_.resize(spec.graphs.size());
  community_of_.resize(spec.graphs.size());
  for (size_t g = 0; g < spec.graphs.size(); ++g) {
    const ScenarioGraph& graph = spec.graphs[g];
    const ScenarioTenant& tenant =
        spec.tenants[static_cast<size_t>(graph.tenant)];
    for (int o = tenant.first_object; o < tenant.first_object + tenant.count;
         ++o) {
      graph_of_[static_cast<size_t>(o)] = static_cast<int>(g);
    }
    const size_t epochs =
        graph.rewire_s > 0.0
            ? static_cast<size_t>(
                  std::ceil(spec.duration_s / graph.rewire_s))
            : 1;
    members_[g].resize(std::max<size_t>(epochs, 1));
    community_of_[g].resize(std::max<size_t>(epochs, 1));
    for (size_t e = 0; e < members_[g].size(); ++e) {
      // One decorrelated stream per (graph, epoch): the partition depends
      // only on the scenario seed, never on call order or thread counts.
      Rng rng(MixSeed(MixSeed(spec.seed, 0x67726170 + g), e));
      std::vector<int> order(static_cast<size_t>(tenant.count));
      for (int i = 0; i < tenant.count; ++i) {
        order[static_cast<size_t>(i)] = tenant.first_object + i;
      }
      rng.Shuffle(&order);
      members_[g][e].assign(static_cast<size_t>(graph.communities), {});
      community_of_[g][e].assign(static_cast<size_t>(tenant.count), 0);
      for (size_t i = 0; i < order.size(); ++i) {
        const size_t c = i % static_cast<size_t>(graph.communities);
        members_[g][e][c].push_back(order[i]);
        community_of_[g][e][static_cast<size_t>(
            order[i] - tenant.first_object)] = static_cast<int>(c);
      }
      for (auto& community : members_[g][e]) {
        std::sort(community.begin(), community.end());
      }
    }
  }
}

int InteractionGraph::GraphOf(int object) const {
  if (object < 0 || object >= static_cast<int>(graph_of_.size())) return -1;
  return graph_of_[static_cast<size_t>(object)];
}

size_t InteractionGraph::EpochOf(size_t graph, double time_s) const {
  const ScenarioGraph& g = spec_->graphs[graph];
  if (g.rewire_s <= 0.0) return 0;
  const size_t epochs = members_[graph].size();
  const size_t e = static_cast<size_t>(std::max(0.0, time_s) / g.rewire_s);
  return std::min(e, epochs - 1);
}

const std::vector<int>& InteractionGraph::Community(int object,
                                                    double time_s) const {
  const int g = GraphOf(object);
  LDB_CHECK_GE(g, 0);
  const size_t gi = static_cast<size_t>(g);
  const size_t e = EpochOf(gi, time_s);
  const ScenarioTenant& tenant = spec_->tenants[static_cast<size_t>(
      spec_->graphs[gi].tenant)];
  const int c = community_of_[gi][e][static_cast<size_t>(
      object - tenant.first_object)];
  return members_[gi][e][static_cast<size_t>(c)];
}

std::vector<ScenarioSegment> BuildTimeline(const ScenarioSpec& spec,
                                           int num_objects) {
  LDB_CHECK(spec.Validate(num_objects).ok());
  std::vector<double> bounds = {0.0, spec.duration_s};
  const auto add = [&](double t) {
    if (t > 0.0 && t < spec.duration_s) bounds.push_back(t);
  };
  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    add(spec.tenants[i].arrive_s);
    add(spec.DepartTime(i));
  }
  for (const ScenarioPhase& p : spec.phases) {
    add(p.start_s);
    add(p.end_s);
  }
  for (const ScenarioDrift& d : spec.drifts) {
    // Subdivide the ramp so the piecewise-constant approximation tracks
    // the geometric rate curve.
    for (int k = 0; k <= 4; ++k) {
      add(d.start_s + (d.end_s - d.start_s) * k / 4.0);
    }
  }
  for (const ScenarioGraph& g : spec.graphs) {
    if (g.rewire_s > 0.0) {
      for (double t = g.rewire_s; t < spec.duration_s; t += g.rewire_s) {
        add(t);
      }
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end(),
                           [](double a, double b) {
                             return std::fabs(a - b) < 1e-9;
                           }),
               bounds.end());

  const InteractionGraph graph(spec);
  std::vector<ScenarioSegment> timeline;
  const size_t n = static_cast<size_t>(num_objects);
  for (size_t b = 0; b + 1 < bounds.size(); ++b) {
    ScenarioSegment seg;
    seg.start_s = bounds[b];
    seg.end_s = bounds[b + 1];
    const double mid = (seg.start_s + seg.end_s) / 2.0;
    seg.workloads.assign(n, WorkloadDesc{});
    for (WorkloadDesc& w : seg.workloads) w.overlap.assign(n, 0.0);
    for (size_t t = 0; t < spec.tenants.size(); ++t) {
      const ScenarioTenant& tenant = spec.tenants[t];
      const double mult = TenantRateMultiplier(spec, t, mid);
      if (mult <= 0.0) continue;  // churned away: the row stays all-zero
      // Graph tenants touch `burst` objects per arrival, so the
      // per-object request rate scales by the burst width.
      const ScenarioGraph* g = nullptr;
      for (const ScenarioGraph& cand : spec.graphs) {
        if (cand.tenant == static_cast<int>(t)) g = &cand;
      }
      const double per_object =
          tenant.rate * mult * (g != nullptr ? g->burst : 1);
      for (int o = tenant.first_object;
           o < tenant.first_object + tenant.count; ++o) {
        WorkloadDesc& w = seg.workloads[static_cast<size_t>(o)];
        w.read_rate = per_object * (1.0 - tenant.write_fraction);
        w.write_rate = per_object * tenant.write_fraction;
        w.read_size = static_cast<double>(tenant.request_bytes);
        w.write_size = static_cast<double>(tenant.request_bytes);
        w.run_count = tenant.run_length;
        if (g != nullptr) {
          const std::vector<int>& peers = graph.Community(o, mid);
          for (int p : peers) {
            if (p != o) {
              w.overlap[static_cast<size_t>(p)] = g->coaccess;
            }
          }
        }
      }
    }
    SparsifyOverlap(&seg.workloads);
    timeline.push_back(std::move(seg));
  }
  return timeline;
}

}  // namespace ldb
