#include "scenario/player.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "util/random.h"

namespace ldb {

namespace {

/// Per-tenant driver state: one RNG stream and a staleness generation.
struct TenantState {
  Rng rng;
  /// Bumped at every rate boundary so arrival events scheduled under the
  /// old intensity cancel themselves (the event queue has no removal).
  uint64_t generation = 0;

  explicit TenantState(uint64_t seed) : rng(seed) {}
};

/// Per-object sequential cursor: `runs > 1` tenants continue a run this
/// many more times before jumping to a fresh random offset.
struct Cursor {
  int64_t next_offset = 0;
  int remaining_run = 0;
};

}  // namespace

ScenarioPlayer::ScenarioPlayer(StorageSystem* system, VolumeRouter* router,
                               const ScenarioSpec& spec,
                               ScenarioPlayerOptions options)
    : system_(system),
      router_(router),
      spec_(&spec),
      options_(options) {}

Result<RunResult> ScenarioPlayer::Play() {
  LDB_RETURN_IF_ERROR(spec_->Validate(router_->num_objects()));
  if (options_.max_in_flight < 1) {
    return Status::InvalidArgument("max_in_flight must be >= 1");
  }

  // Start from quiescent devices so measurements reflect this run only.
  for (int j = 0; j < system_->num_targets(); ++j) system_->target(j).Reset();

  // Scenario-clock resume: `pos` seconds of the timeline already played
  // (in a previous, killed process). `origin` is where the scenario's t=0
  // falls on the simulation clock, so `now - origin` is the absolute
  // scenario position everywhere below; a fresh run has origin ==
  // start_time and plays the full duration.
  const double pos =
      std::clamp(options_.start_offset_s, 0.0, spec_->duration_s);
  const double start_time = system_->Now();
  const double origin = start_time - pos;
  const double end_time = origin + spec_->duration_s;
  const InteractionGraph graph(*spec_);

  // MixSeed-per-tenant streams: bit-identical for any host thread count.
  const uint64_t base = MixSeed(spec_->seed, options_.seed);
  std::vector<TenantState> tenants;
  tenants.reserve(spec_->tenants.size());
  for (size_t t = 0; t < spec_->tenants.size(); ++t) {
    tenants.emplace_back(MixSeed(base, t));
  }
  std::vector<Cursor> cursors(
      static_cast<size_t>(router_->num_objects()));

  bool finished = false;
  int in_flight = 0;
  uint64_t completed = 0;
  uint64_t next_logical_seq = 0;
  std::vector<TargetChunk> chunks;  // scratch, reused across submissions

  // Issues one logical request against `object`. RNG is always consumed
  // (offset + read/write coin) before the shed decision, so the arrival
  // stream is independent of the in-flight cap.
  auto issue = [&](TenantState& ts, const ScenarioTenant& tenant,
                   int object) {
    const int64_t osize = router_->object_size(object);
    const int64_t req = std::min<int64_t>(tenant.request_bytes, osize);
    Cursor& cur = cursors[static_cast<size_t>(object)];
    int64_t offset = 0;
    if (cur.remaining_run > 0 && cur.next_offset + req <= osize) {
      offset = cur.next_offset;
      --cur.remaining_run;
    } else {
      const int64_t slots = (osize - req) / std::max<int64_t>(req, 1);
      offset = slots > 0
                   ? static_cast<int64_t>(ts.rng.UniformInt(
                         int64_t{0}, slots)) * req
                   : 0;
      cur.remaining_run =
          std::max(0, static_cast<int>(tenant.run_length) - 1);
    }
    cur.next_offset = offset + req;
    const bool is_write = tenant.write_fraction >= 1.0 ||
                          (tenant.write_fraction > 0.0 &&
                           ts.rng.Bernoulli(tenant.write_fraction));

    if (in_flight >= options_.max_in_flight) {
      ++stats_.shed;
      return;
    }
    ++stats_.requests;
    ++in_flight;

    chunks.clear();
    router_->Route(object, offset, req, is_write, &chunks);
    auto pending = std::make_shared<int>(static_cast<int>(chunks.size()));
    std::shared_ptr<IoEvent> logical_ev;
    if (logical_observer_) {
      logical_ev = std::make_shared<IoEvent>();
      logical_ev->submit_time = system_->Now();
      logical_ev->seq = next_logical_seq++;
      logical_ev->target = -1;
      logical_ev->object = object;
      logical_ev->offset = offset;
      logical_ev->logical_offset = offset;
      logical_ev->size = req;
      logical_ev->is_write = is_write;
    }
    int64_t logical = offset;
    for (const TargetChunk& c : chunks) {
      TargetRequest tr;
      tr.offset = c.offset;
      tr.size = c.size;
      tr.is_write = is_write;
      tr.object = object;
      tr.logical_offset = logical;
      logical += c.size;
      system_->Submit(c.target, tr,
                      [&, pending, logical_ev](double when) {
                        if (--*pending == 0) {
                          --in_flight;
                          ++completed;
                          if (logical_ev) {
                            logical_ev->complete_time = when;
                            logical_observer_(*logical_ev);
                          }
                        }
                      });
    }
  };

  // Arrival chain per tenant. Exponential gaps sampled at the current
  // intensity; boundary events below bump the generation and restart the
  // chain so intensity changes take effect immediately.
  std::function<void(size_t, uint64_t)> schedule_next;
  std::function<void(size_t, uint64_t)> fire = [&](size_t t, uint64_t gen) {
    TenantState& ts = tenants[t];
    if (gen != ts.generation || finished) return;
    const double now = system_->Now();
    if (now >= end_time) return;
    const ScenarioTenant& tenant = spec_->tenants[t];
    const double mult =
        TenantRateMultiplier(*spec_, t, now - origin);
    if (mult > 0.0) {
      ++stats_.arrivals;
      const int anchor =
          tenant.first_object +
          static_cast<int>(ts.rng.UniformInt(
              int64_t{0}, static_cast<int64_t>(tenant.count - 1)));
      if (graph.GraphOf(anchor) >= 0) {
        // Community co-access burst: the anchor plus burst-1 distinct
        // peers from its current community, submitted together.
        const ScenarioGraph& g = spec_->graphs[static_cast<size_t>(
            graph.GraphOf(anchor))];
        const std::vector<int>& peers =
            graph.Community(anchor, now - origin);
        issue(ts, tenant, anchor);
        int issued = 1;
        const size_t stride =
            1 + ts.rng.UniformInt(static_cast<uint64_t>(peers.size()));
        for (size_t k = 0; issued < g.burst && k < peers.size(); ++k) {
          const int peer =
              peers[(k * stride + stride) % peers.size()];
          if (peer == anchor) continue;
          issue(ts, tenant, peer);
          ++issued;
        }
      } else {
        issue(ts, tenant, anchor);
      }
    }
    schedule_next(t, gen);
  };
  schedule_next = [&](size_t t, uint64_t gen) {
    TenantState& ts = tenants[t];
    if (gen != ts.generation || finished) return;
    const double now = system_->Now();
    const double mult =
        TenantRateMultiplier(*spec_, t, now - origin);
    const ScenarioTenant& tenant = spec_->tenants[t];
    const double lambda = tenant.rate * mult * tenant.count;
    if (lambda <= 0.0) return;  // a boundary event will restart the chain
    const double gap = ts.rng.Exponential(1.0 / lambda);
    const double at = now + gap;
    if (at >= end_time) return;
    system_->queue().ScheduleAt(at, [&, t, gen]() { fire(t, gen); });
  };

  // Rate boundaries: phase/flash edges, drift start (the ramp itself is
  // sampled at scheduling instants), churn arrivals/departures. Each
  // bumps the tenant's generation and restarts its arrival chain at the
  // new intensity.
  std::vector<std::vector<double>> boundaries(spec_->tenants.size());
  for (size_t t = 0; t < spec_->tenants.size(); ++t) {
    boundaries[t].push_back(spec_->tenants[t].arrive_s);
    const double depart = spec_->DepartTime(t);
    if (depart < spec_->duration_s) boundaries[t].push_back(depart);
  }
  for (const ScenarioPhase& p : spec_->phases) {
    boundaries[static_cast<size_t>(p.tenant)].push_back(p.start_s);
    boundaries[static_cast<size_t>(p.tenant)].push_back(p.end_s);
  }
  for (const ScenarioDrift& d : spec_->drifts) {
    // Sample the geometric ramp at eight points so sampled intensities
    // track the curve even with sparse arrivals.
    for (int k = 0; k <= 8; ++k) {
      boundaries[static_cast<size_t>(d.tenant)].push_back(
          d.start_s + (d.end_s - d.start_s) * k / 8.0);
    }
  }
  for (size_t t = 0; t < boundaries.size(); ++t) {
    std::sort(boundaries[t].begin(), boundaries[t].end());
    boundaries[t].erase(
        std::unique(boundaries[t].begin(), boundaries[t].end()),
        boundaries[t].end());
    for (double b : boundaries[t]) {
      // Boundaries already behind the resume position are folded into the
      // kickoff intensity below; the rest land on the shifted clock.
      if (b < pos || b >= spec_->duration_s) continue;
      system_->queue().ScheduleAt(origin + b, [&, t]() {
        if (finished) return;
        const uint64_t gen = ++tenants[t].generation;
        schedule_next(t, gen);
      });
    }
  }

  // The scenario end: stop all arrival chains and report logical finish
  // (in-flight requests drain inside the same RunUntilIdle).
  system_->queue().ScheduleAt(end_time, [&]() {
    finished = true;
    if (on_finished_) on_finished_();
  });

  // Kick off every tenant active at the starting position (boundary
  // events handle later arrivals).
  for (size_t t = 0; t < spec_->tenants.size(); ++t) {
    if (spec_->tenants[t].arrive_s <= pos) {
      schedule_next(t, tenants[t].generation);
    }
  }

  system_->queue().RunUntilIdle();

  RunResult result;
  result.elapsed_seconds = spec_->duration_s - pos;
  result.total_requests = completed;
  result.faults = system_->TotalFaultStats();
  const double elapsed = std::max(result.elapsed_seconds, 1e-9);
  for (int j = 0; j < system_->num_targets(); ++j) {
    result.utilization.push_back(system_->MeasuredUtilization(j, elapsed));
  }
  return result;
}

}  // namespace ldb
