#ifndef LAYOUTDB_SCENARIO_SIM_H_
#define LAYOUTDB_SCENARIO_SIM_H_

#include <string>

#include "core/autopilot.h"
#include "core/problem.h"
#include "model/layout.h"
#include "scenario/player.h"
#include "scenario/scenario.h"
#include "storage/fault.h"
#include "storage/storage_system.h"
#include "util/status.h"

namespace ldb {

/// Everything a scenario run produced: the foreground measurements plus,
/// for autopilot runs, the full controller report.
struct ScenarioOutcome {
  RunResult run;
  ScenarioPlayStats play;
  bool has_autopilot = false;
  AutopilotReport autopilot;

  /// Digest of the foreground-observable half only (run metrics,
  /// per-target utilization, player counters) — the part a static run and
  /// an autopilot run can be compared on. An autopilot run with drift
  /// disabled (threshold = inf) matches the static run's RunFingerprint
  /// bit-for-bit.
  std::string RunFingerprint() const;

  /// Full digest: RunFingerprint plus, when present, the autopilot
  /// report's own fingerprint (decision log, final layout). The
  /// thread-count bit-identity checks compare these.
  std::string Fingerprint() const;
};

/// Plays `spec` against the fixed `layout` on `system`: builds the volume
/// chain, arms `faults`, and runs an open-loop ScenarioPlayer. The
/// baseline every adaptive run is scored against. A `logical_observer`
/// receives every object-level completion — bench_scenarios runs this
/// under SEE with an OnlineAnalyzer attached to fit per-segment workload
/// descriptions in the same frame the autopilot's analyzer sees.
Result<ScenarioOutcome> PlayScenarioStatic(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& layout, const ScenarioSpec& spec, const FaultPlan& faults,
    ScenarioPlayerOptions popts = {},
    StorageSystem::Observer logical_observer = nullptr);

/// Plays `spec` under the closed autopilot loop (RunAutopilotLoop with a
/// ScenarioPlayer foreground): the player's logical completions feed the
/// streaming analyzer, drift trips re-advise, and gated migrations splice
/// into the player's router mid-scenario.
Result<ScenarioOutcome> PlayScenarioAutopilot(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& initial_layout, const ScenarioSpec& spec,
    const FaultPlan& faults, const AutopilotOptions& options,
    ScenarioPlayerOptions popts = {});

/// CLI-facing scenario simulation (sibling of SimulateProblemAutopilot):
/// rebuilds devices from the problem's calibrated cost-model names and
/// plays `spec` with `current` deployed — statically when `autopilot` is
/// null, under the closed loop otherwise.
Result<ScenarioOutcome> SimulateProblemScenario(
    const LayoutProblem& problem, const Layout& current,
    const ScenarioSpec& spec, const FaultPlan& faults,
    const AutopilotOptions* autopilot = nullptr,
    ScenarioPlayerOptions popts = {});

}  // namespace ldb

#endif  // LAYOUTDB_SCENARIO_SIM_H_
