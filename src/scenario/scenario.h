#ifndef LAYOUTDB_SCENARIO_SCENARIO_H_
#define LAYOUTDB_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/workload.h"
#include "util/status.h"

namespace ldb {

/// One tenant of a declarative scenario: a contiguous range of database
/// objects driven by a Poisson arrival process at `rate` arrivals/s per
/// object while the tenant is active ([arrive_s, depart_s)).
struct ScenarioTenant {
  std::string name;
  int first_object = 0;  ///< objects [first_object, first_object + count)
  int count = 0;
  double rate = 0.0;            ///< arrivals/s per object while active
  int64_t request_bytes = 64 * 1024;
  double write_fraction = 0.0;  ///< per-request Bernoulli write probability
  double run_length = 1.0;      ///< mean sequential run (1 = fully random)
  double arrive_s = 0.0;        ///< churn: tenant starts issuing here
  double depart_s = 0.0;        ///< and stops here; 0 = scenario end
};

/// A multiplicative rate window on one tenant: while start_s <= t < end_s
/// the tenant's per-object rate is scaled by `multiplier`. Flash crowds
/// are phases with large multipliers (the `flash=` clause is sugar).
struct ScenarioPhase {
  int tenant = -1;
  double start_s = 0.0;
  double end_s = 0.0;
  double multiplier = 1.0;
};

/// Slow adversarial drift: the tenant's rate multiplier ramps
/// geometrically from 1 at start_s to `multiplier` at end_s and plateaus
/// there — shaped so the DriftDetector score creeps up and then sits
/// still, never edge-triggering (the sustain knob exists for exactly
/// this).
struct ScenarioDrift {
  int tenant = -1;
  double start_s = 0.0;
  double end_s = 0.0;
  double multiplier = 1.0;
};

/// Evolving interaction-graph co-access over one tenant's objects: the
/// objects are partitioned into `communities`, each arrival touches
/// `burst` objects of one community together, and every `rewire_s`
/// seconds the partition is reshuffled (community rewiring). The same
/// epochs drive both the player (co-access bursts) and the analytic
/// timeline (overlap rows, emitted as CSR via SparsifyOverlap).
struct ScenarioGraph {
  int tenant = -1;
  int communities = 2;
  double coaccess = 0.5;  ///< intra-community overlap fraction in [0,1]
  double rewire_s = 0.0;  ///< rewiring period; 0 = static communities
  int burst = 2;          ///< objects co-accessed per arrival
};

/// A declarative time-varying multi-tenant workload scenario — the
/// `scenario` directive of the problem-file grammar. A scenario is data:
/// the same spec drives the event-queue player, the analytic timeline the
/// benches score against, and the documentation tables.
struct ScenarioSpec {
  double duration_s = 0.0;
  uint64_t seed = 42;  ///< root of the MixSeed-per-tenant RNG streams
  std::vector<ScenarioTenant> tenants;
  std::vector<ScenarioPhase> phases;
  std::vector<ScenarioDrift> drifts;
  std::vector<ScenarioGraph> graphs;

  bool empty() const { return tenants.empty(); }

  /// Index of the tenant named `name`, or -1.
  int FindTenant(const std::string& name) const;

  /// Structural validation. With `num_objects` >= 0 the tenant object
  /// ranges are checked against the catalog size; pass -1 when the
  /// catalog is not known yet (the parser does).
  Status Validate(int num_objects = -1) const;

  /// Effective depart time of tenant `t` (depart_s, or duration_s when 0).
  double DepartTime(size_t t) const;
};

/// Parses the scenario spec grammar. Clauses are ';'-separated,
/// comma-separated key=value items; the first key of each clause selects
/// its kind, and errors are clause-indexed ("scenario spec clause 3: ..."):
///
///   duration=<s>                      scenario length (required, once)
///   seed=<n>                          RNG root (optional)
///   tenant=<name>,objects=<a>:<b>,rate=<r/s>[,bytes=<n>][,write=<f>]
///          [,runs=<q>][,arrive=<t>][,depart=<t>]
///   phase=<tenant>,start=<t>,end=<t>,x=<mult>
///   flash=<tenant>,at=<t>,for=<s>,x=<mult>      # sugar for a phase
///   graph=<tenant>[,communities=<k>][,coaccess=<f>][,rewire=<s>]
///         [,burst=<n>]
///   drift=<tenant>,start=<t>,end=<t>,x=<mult>
///
/// Tenants must be declared before they are referenced.
Result<ScenarioSpec> ParseScenarioSpec(const std::string& text);

/// Renders a spec back to the clause grammar; ParseScenarioSpec of the
/// output reproduces the spec (flash clauses re-serialize as phases).
std::string ScenarioToString(const ScenarioSpec& spec);

/// Instantaneous rate multiplier of tenant `t` at time `time_s`: 0 while
/// inactive, otherwise the product of every covering phase window and the
/// drift ramp.
double TenantRateMultiplier(const ScenarioSpec& spec, size_t t,
                            double time_s);

/// Deterministic community assignments for the graph-structured tenants:
/// all rewire epochs are precomputed at construction from the scenario
/// seed, so the player and the analytic timeline see identical
/// partitions regardless of thread counts or call order.
class InteractionGraph {
 public:
  explicit InteractionGraph(const ScenarioSpec& spec);

  /// Index into spec.graphs of the graph covering `object`, or -1.
  int GraphOf(int object) const;

  /// Objects sharing `object`'s community at time `time_s`, including
  /// `object` itself, in increasing id order. `object` must belong to a
  /// graph-structured tenant (GraphOf(object) >= 0).
  const std::vector<int>& Community(int object, double time_s) const;

 private:
  size_t EpochOf(size_t graph, double time_s) const;

  const ScenarioSpec* spec_;
  std::vector<int> graph_of_;  ///< object -> graph index or -1
  /// members_[g][epoch][community] = sorted member object ids.
  std::vector<std::vector<std::vector<std::vector<int>>>> members_;
  /// community_of_[g][epoch][object - first_object] = community index.
  std::vector<std::vector<std::vector<int>>> community_of_;
};

/// One piecewise-stationary segment of the analytic scenario timeline.
struct ScenarioSegment {
  double start_s = 0.0;
  double end_s = 0.0;
  /// Workload descriptions at the segment midpoint, overlap rows in the
  /// sparse CSR form (SparsifyOverlap of the graph co-access structure).
  WorkloadSet workloads;
};

/// Builds the analytic timeline: boundaries at every phase, churn, drift
/// and rewire edge (drift ramps subdivided into four sub-segments), with
/// each segment's workloads evaluated at its midpoint. The benches score
/// oracle/static/autopilot layouts against these segments; the property
/// tests validate the CSR rows they share with the online analyzer.
std::vector<ScenarioSegment> BuildTimeline(const ScenarioSpec& spec,
                                           int num_objects);

}  // namespace ldb

#endif  // LAYOUTDB_SCENARIO_SCENARIO_H_
