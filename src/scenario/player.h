#ifndef LAYOUTDB_SCENARIO_PLAYER_H_
#define LAYOUTDB_SCENARIO_PLAYER_H_

#include <cstdint>
#include <functional>

#include "scenario/scenario.h"
#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "util/status.h"
#include "workload/runner.h"

namespace ldb {

/// Knobs of the scenario player.
struct ScenarioPlayerOptions {
  /// Runtime seed, mixed with the scenario's declarative seed; every
  /// tenant then gets its own decorrelated stream via
  /// Rng(MixSeed(MixSeed(spec.seed, seed), tenant)).
  uint64_t seed = 42;
  /// Open-loop overload protection: logical requests beyond this many in
  /// flight are shed (counted, not submitted). Deterministic — shedding
  /// depends only on the event order, which is seed-determined.
  int max_in_flight = 4096;
  /// Scenario-clock resume: start playing `start_offset_s` seconds into
  /// the scenario timeline (clamped to the duration) instead of at zero.
  /// Phase/flash/churn windows, graph rewiring, and the end-of-scenario
  /// time all shift as if the first `start_offset_s` seconds had already
  /// played; tenants whose arrival time already passed start immediately.
  /// Limitation: arrival RNG streams restart fresh — the *clock* resumes,
  /// not the exact request sequence the dead process would have issued.
  double start_offset_s = 0.0;
};

/// Player-side counters (the foreground half of a scenario outcome).
struct ScenarioPlayStats {
  uint64_t arrivals = 0;  ///< arrival events fired
  uint64_t requests = 0;  ///< logical requests submitted
  uint64_t shed = 0;      ///< requests dropped at the in-flight cap
};

/// Drives a ScenarioSpec on the event queue as an *open-loop* workload:
/// per-tenant Poisson arrival processes whose intensity follows
/// TenantRateMultiplier (phases, flash crowds, churn, drift), with
/// interaction-graph tenants submitting community co-access bursts. The
/// closed-loop WorkloadRunner cannot express time-varying rates — its
/// streams reissue on completion, so storage speed sets the rate; here
/// the scenario sets the rate and storage speed sets queueing.
///
/// Determinism: all arrivals derive from per-tenant MixSeed RNG streams
/// and the single-threaded event queue, so a scenario replays
/// bit-identically for any host thread count; under the autopilot the
/// solver's own thread-count guarantee extends this to the whole closed
/// loop.
class ScenarioPlayer {
 public:
  /// `system` and `router` must outlive the player. The router must map
  /// every object referenced by the spec's tenants.
  ScenarioPlayer(StorageSystem* system, VolumeRouter* router,
                 const ScenarioSpec& spec,
                 ScenarioPlayerOptions options = {});

  /// Object-level (pre-striping) completion observer, as in
  /// WorkloadRunner — this is what feeds the autopilot's OnlineAnalyzer.
  void set_logical_observer(StorageSystem::Observer observer) {
    logical_observer_ = std::move(observer);
  }

  /// Called once at the simulated time the scenario duration elapses
  /// (in-flight requests may still be draining).
  void set_on_finished(std::function<void()> hook) {
    on_finished_ = std::move(hook);
  }

  /// Plays the scenario to completion (pumps the event queue until idle)
  /// and returns the measured results.
  Result<RunResult> Play();

  const ScenarioPlayStats& stats() const { return stats_; }

 private:
  StorageSystem* system_;
  VolumeRouter* router_;
  const ScenarioSpec* spec_;
  ScenarioPlayerOptions options_;
  StorageSystem::Observer logical_observer_;
  std::function<void()> on_finished_;
  ScenarioPlayStats stats_;
};

}  // namespace ldb

#endif  // LAYOUTDB_SCENARIO_PLAYER_H_
