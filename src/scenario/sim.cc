#include "scenario/sim.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/sim_setup.h"
#include "storage/lvm.h"
#include "util/table.h"

namespace ldb {

std::string ScenarioOutcome::RunFingerprint() const {
  std::string out = StrFormat(
      "elapsed=%.17g;requests=%llu;arrivals=%llu;submitted=%llu;shed=%llu",
      run.elapsed_seconds, static_cast<unsigned long long>(run.total_requests),
      static_cast<unsigned long long>(play.arrivals),
      static_cast<unsigned long long>(play.requests),
      static_cast<unsigned long long>(play.shed));
  out += ";util";
  for (double u : run.utilization) out += StrFormat("|%.17g", u);
  out += StrFormat(";faults=%llu,%llu,%llu",
                   static_cast<unsigned long long>(run.faults.faults_injected),
                   static_cast<unsigned long long>(run.faults.transient_errors),
                   static_cast<unsigned long long>(run.faults.failed_requests));
  return out;
}

std::string ScenarioOutcome::Fingerprint() const {
  std::string out = RunFingerprint();
  if (has_autopilot) out += ";ap:" + autopilot.Fingerprint();
  return out;
}

Result<ScenarioOutcome> PlayScenarioStatic(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& layout, const ScenarioSpec& spec, const FaultPlan& faults,
    ScenarioPlayerOptions popts, StorageSystem::Observer logical_observer) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  // Deployed state, like a migration source: physics only, not policy.
  auto placements = LayoutToPlacements(problem, layout,
                                       /*check_placement_constraints=*/false);
  if (!placements.ok()) return placements.status();
  auto volumes = StripedVolumeManager::Create(
      problem.object_sizes, std::move(placements).value(),
      system->capacities(), problem.lvm_stripe_bytes);
  if (!volumes.ok()) return volumes.status();
  PassthroughRouter router(&volumes.value());

  // Arm before Play, mirroring RunAutopilotLoop's order; the player resets
  // targets at start like the runner, which does not disturb armed faults.
  FaultInjector injector(system, faults);
  LDB_RETURN_IF_ERROR(injector.Arm());

  ScenarioPlayer player(system, &router, spec, popts);
  if (logical_observer) {
    player.set_logical_observer(std::move(logical_observer));
  }
  auto run = player.Play();
  if (!run.ok()) return run.status();

  ScenarioOutcome outcome;
  outcome.run = std::move(run).value();
  outcome.run.skipped_faults = injector.skipped();
  outcome.play = player.stats();
  return outcome;
}

Result<ScenarioOutcome> PlayScenarioAutopilot(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& initial_layout, const ScenarioSpec& spec,
    const FaultPlan& faults, const AutopilotOptions& options,
    ScenarioPlayerOptions popts) {
  ScenarioPlayStats play;
  // Journaled scenario runs record the scenario clock every tick so a
  // mid-scenario kill can resume the player at the recorded position; the
  // offset is wherever this run itself started (0 when fresh).
  AutopilotOptions opts = options;
  if (!opts.journal_path.empty() && opts.scenario_position_offset_s < 0.0) {
    opts.scenario_position_offset_s = std::max(0.0, popts.start_offset_s);
  }
  auto driver = [&](VolumeRouter* router,
                    const StorageSystem::Observer& observe,
                    const std::function<void()>& on_finished)
      -> Result<RunResult> {
    ScenarioPlayer player(system, router, spec, popts);
    player.set_logical_observer(observe);
    player.set_on_finished(on_finished);
    auto run = player.Play();
    play = player.stats();
    return run;
  };
  auto report = RunAutopilotLoop(system, problem, initial_layout, faults,
                                 opts, driver);
  if (!report.ok()) return report.status();

  ScenarioOutcome outcome;
  outcome.run = report->run;
  outcome.play = play;
  outcome.has_autopilot = true;
  outcome.autopilot = std::move(report).value();
  return outcome;
}

Result<ScenarioOutcome> SimulateProblemScenario(
    const LayoutProblem& problem, const Layout& current,
    const ScenarioSpec& spec, const FaultPlan& faults,
    const AutopilotOptions* autopilot, ScenarioPlayerOptions popts) {
  auto rebuilt = BuildSystemForProblem(problem);
  if (!rebuilt.ok()) return rebuilt.status();
  if (autopilot != nullptr) {
    return PlayScenarioAutopilot(rebuilt->system.get(), problem, current,
                                 spec, faults, *autopilot, popts);
  }
  return PlayScenarioStatic(rebuilt->system.get(), problem, current, spec,
                            faults, popts);
}

}  // namespace ldb
