#include "solver/multistart.h"

#include "solver/simplex.h"
#include "util/check.h"

namespace ldb {

MultiStartSolver::MultiStartSolver(SolverOptions options)
    : solver_(options) {}

Result<SolverResult> MultiStartSolver::Solve(
    const LayoutNlpProblem& problem,
    const std::vector<Layout>& initials) const {
  if (initials.empty()) {
    return Status::InvalidArgument("at least one initial layout required");
  }
  bool have_best = false;
  SolverResult best;
  for (const Layout& seed : initials) {
    auto run = solver_.Solve(problem, seed);
    if (!run.ok()) return run.status();
    SolverResult r = std::move(run).value();
    const bool better =
        !have_best ||
        (r.feasible && !best.feasible) ||
        (r.feasible == best.feasible &&
         r.max_utilization < best.max_utilization);
    if (better) {
      // Accumulate effort counters across starts before overwriting.
      r.iterations += have_best ? best.iterations : 0;
      r.objective_evaluations +=
          have_best ? best.objective_evaluations : 0;
      best = std::move(r);
      have_best = true;
    } else {
      best.iterations += r.iterations;
      best.objective_evaluations += r.objective_evaluations;
    }
  }
  return best;
}

std::vector<Layout> MultiStartSolver::RandomSeeds(
    const LayoutNlpProblem& problem, int count, Rng* rng) {
  LDB_CHECK(rng != nullptr);
  LDB_CHECK_GT(count, 0);
  std::vector<Layout> seeds;
  seeds.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    Layout l(problem.num_objects, problem.num_targets);
    for (int i = 0; i < problem.num_objects; ++i) {
      double* row = l.Row(i);
      // Sparse random rows: most mass on a couple of targets.
      for (int j = 0; j < problem.num_targets; ++j) {
        const double u = rng->Uniform();
        row[j] = u * u * u;
      }
      ProjectToSimplex(row, static_cast<size_t>(problem.num_targets));
    }
    seeds.push_back(std::move(l));
  }
  return seeds;
}

}  // namespace ldb
