#include "solver/multistart.h"

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "solver/simplex.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ldb {

MultiStartSolver::MultiStartSolver(SolverOptions options)
    : options_(options), solver_(options) {}

Result<SolverResult> MultiStartSolver::Solve(
    const LayoutNlpProblem& problem,
    const std::vector<Layout>& initials) const {
  if (initials.empty()) {
    return Status::InvalidArgument("at least one initial layout required");
  }

  // Each seed's run lands in its own slot; the reduction below walks the
  // slots serially in seed order, so the outcome (winner, accumulated
  // counters, first error) is identical for every thread count.
  std::vector<std::optional<Result<SolverResult>>> runs(initials.size());
  const int threads = ThreadPool::EffectiveThreads(options_.num_threads);
  if (threads > 1 && initials.size() > 1) {
    // Seeds are the parallel unit here; force the per-seed solves serial so
    // the pools do not compose (and per-seed results stay identical to a
    // standalone serial solve).
    SolverOptions inner = options_;
    inner.num_threads = 1;
    const ProjectedGradientSolver inner_solver(inner);
    ThreadPool pool(threads);
    pool.ParallelFor(static_cast<int64_t>(initials.size()),
                     [&](int, int64_t s) {
                       runs[static_cast<size_t>(s)] =
                           inner_solver.Solve(problem, initials[static_cast<size_t>(s)]);
                     });
  } else {
    for (size_t s = 0; s < initials.size(); ++s) {
      runs[s] = solver_.Solve(problem, initials[s]);
      if (!runs[s]->ok()) break;  // later seeds would be discarded anyway
    }
  }

  bool have_best = false;
  SolverResult best;
  for (size_t s = 0; s < runs.size(); ++s) {
    LDB_CHECK(runs[s].has_value());
    Result<SolverResult>& run = *runs[s];
    if (!run.ok()) return run.status();
    SolverResult r = std::move(run).value();
    const bool better =
        !have_best ||
        (r.feasible && !best.feasible) ||
        (r.feasible == best.feasible &&
         r.max_utilization < best.max_utilization);
    if (better) {
      // Accumulate effort counters across starts before overwriting.
      r.iterations += have_best ? best.iterations : 0;
      r.objective_evaluations +=
          have_best ? best.objective_evaluations : 0;
      r.incremental_evaluations +=
          have_best ? best.incremental_evaluations : 0;
      r.gradient_evaluations += have_best ? best.gradient_evaluations : 0;
      r.interp_queries += have_best ? best.interp_queries : 0;
      if (have_best) r.profile.Accumulate(best.profile);
      best = std::move(r);
      have_best = true;
    } else {
      best.iterations += r.iterations;
      best.objective_evaluations += r.objective_evaluations;
      best.incremental_evaluations += r.incremental_evaluations;
      best.gradient_evaluations += r.gradient_evaluations;
      best.interp_queries += r.interp_queries;
      best.profile.Accumulate(r.profile);
    }
  }
  return best;
}

std::vector<Layout> MultiStartSolver::RandomSeeds(
    const LayoutNlpProblem& problem, int count, Rng* rng) {
  LDB_CHECK(rng != nullptr);
  LDB_CHECK_GT(count, 0);
  std::vector<Layout> seeds;
  seeds.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    Layout l(problem.num_objects, problem.num_targets);
    for (int i = 0; i < problem.num_objects; ++i) {
      double* row = l.Row(i);
      // Sparse random rows: most mass on a couple of targets.
      for (int j = 0; j < problem.num_targets; ++j) {
        const double u = rng->Uniform();
        row[j] = u * u * u;
      }
      ProjectToSimplex(row, static_cast<size_t>(problem.num_targets));
    }
    seeds.push_back(std::move(l));
  }
  return seeds;
}

}  // namespace ldb
