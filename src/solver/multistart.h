#ifndef LAYOUTDB_SOLVER_MULTISTART_H_
#define LAYOUTDB_SOLVER_MULTISTART_H_

#include <vector>

#include "solver/projected_gradient.h"
#include "util/random.h"

namespace ldb {

/// Multi-start driver (the "repeat?" loop of the paper's Figure 4): runs
/// the local solver from several initial layouts and keeps the best
/// feasible result. Initial layouts are a convenient channel for domain
/// knowledge — a DBA's candidate layouts can simply be appended to the
/// seed list.
class MultiStartSolver {
 public:
  explicit MultiStartSolver(SolverOptions options = {});

  /// Solves from every seed in `initials`; returns the result with the
  /// lowest max-utilization, preferring feasible results over infeasible
  /// ones. `initials` must be non-empty.
  ///
  /// With `options.num_threads` != 1 the seeds run concurrently (each
  /// per-seed solve forced serial so pools do not nest); results are
  /// reduced serially in seed order and are bit-identical to the serial
  /// driver for any thread count.
  Result<SolverResult> Solve(const LayoutNlpProblem& problem,
                             const std::vector<Layout>& initials) const;

  /// Generates `count` random valid-integrity seeds (each object assigned
  /// a random point on the simplex, biased toward sparse rows).
  static std::vector<Layout> RandomSeeds(const LayoutNlpProblem& problem,
                                         int count, Rng* rng);

 private:
  SolverOptions options_;
  ProjectedGradientSolver solver_;
};

}  // namespace ldb

#endif  // LAYOUTDB_SOLVER_MULTISTART_H_
