#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace ldb {

void ProjectToSimplex(double* v, size_t n, double radius,
                      std::vector<double>* scratch) {
  LDB_CHECK(v != nullptr);
  LDB_CHECK_GT(n, 0u);
  LDB_CHECK_GT(radius, 0.0);

  std::vector<double> local;
  std::vector<double>& u = scratch != nullptr ? *scratch : local;
  u.assign(v, v + n);
  std::sort(u.begin(), u.end(), std::greater<double>());

  // Find rho = max { k : u_k - (cumsum_k - radius)/k > 0 }.
  double cumsum = 0.0;
  double theta = 0.0;
  size_t rho = 0;
  double running = 0.0;
  for (size_t k = 0; k < n; ++k) {
    running += u[k];
    const double t = (running - radius) / static_cast<double>(k + 1);
    if (u[k] - t > 0.0) {
      rho = k + 1;
      cumsum = running;
    }
  }
  LDB_CHECK_GT(rho, 0u);
  theta = (cumsum - radius) / static_cast<double>(rho);

  for (size_t i = 0; i < n; ++i) v[i] = std::max(0.0, v[i] - theta);
}

double SmoothMax(const double* values, size_t n, double t) {
  LDB_CHECK(values != nullptr);
  LDB_CHECK_GT(n, 0u);
  LDB_CHECK_GT(t, 0.0);
  const double vmax = *std::max_element(values, values + n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::exp(t * (values[i] - vmax));
  return vmax + std::log(sum) / t;
}

double SmoothMaxSubstituted(const double* values, size_t n, size_t idx,
                            double replacement, double t) {
  LDB_CHECK(values != nullptr);
  LDB_CHECK_GT(n, 0u);
  LDB_CHECK_LT(idx, n);
  LDB_CHECK_GT(t, 0.0);
  double vmax = replacement;
  for (size_t i = 0; i < n; ++i) {
    if (i != idx && values[i] > vmax) vmax = values[i];
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = i == idx ? replacement : values[i];
    sum += std::exp(t * (v - vmax));
  }
  return vmax + std::log(sum) / t;
}

}  // namespace ldb
