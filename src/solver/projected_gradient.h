#ifndef LAYOUTDB_SOLVER_PROJECTED_GRADIENT_H_
#define LAYOUTDB_SOLVER_PROJECTED_GRADIENT_H_

#include "solver/layout_nlp.h"
#include "util/status.h"

namespace ldb {

/// Generic local NLP solver for the layout problem, playing the role MINOS
/// plays in the paper: given an initial valid layout, locally minimize the
/// (non-convex) max-utilization objective subject to the integrity and
/// capacity constraints.
///
/// Method:
///  * the non-smooth max_j µ_j is replaced by a log-sum-exp smooth max
///    whose temperature is annealed upward across rounds;
///  * capacity constraints enter as a quadratic penalty whose weight is
///    annealed upward in lock-step;
///  * each iteration takes a projected-gradient step: central finite
///    differences over the black-box µ_j (perturbing L_ij only requires
///    re-evaluating target j — the structure exploited for speed), a
///    backtracking Armijo line search, and per-row Euclidean projection
///    back onto the unit simplex;
///  * when the problem supplies incremental column evaluators
///    (LayoutNlpProblem::make_column_eval), each finite-difference
///    perturbation is priced as a rank-1 cache update — O(N) instead of a
///    full O(N²) column recomputation — and the inner loop allocates
///    nothing;
///  * with SolverOptions::num_threads != 1 the finite-difference columns
///    are evaluated concurrently. Gradient entries and effort counters are
///    written to disjoint index-addressed slots and reduced serially, so
///    the result is bit-identical for every thread count;
///  * like MINOS, the result is a locally optimal, generally non-regular
///    layout that depends on the initial point.
class ProjectedGradientSolver {
 public:
  explicit ProjectedGradientSolver(SolverOptions options = {});

  /// Runs the solver from `initial` (rows are projected onto the simplex
  /// first, so any non-negative seed is acceptable).
  ///
  /// \returns InvalidArgument for malformed problems (dimension mismatches,
  ///   missing utilization function, non-positive sizes/capacities).
  Result<SolverResult> Solve(const LayoutNlpProblem& problem,
                             const Layout& initial) const;

 private:
  SolverOptions options_;
};

}  // namespace ldb

#endif  // LAYOUTDB_SOLVER_PROJECTED_GRADIENT_H_
