#include "solver/randomized.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/random.h"
#include "util/table.h"

namespace ldb {

namespace {

/// Proposes a mutation of object i's stripe set: add, remove, or swap one
/// target. Returns false if no move is possible.
bool ProposeMove(const LayoutNlpProblem& p, const std::vector<int>& current,
                 Rng* rng, std::vector<int>* proposed) {
  const int m = p.num_targets;
  *proposed = current;
  const int kind = static_cast<int>(rng->UniformInt(uint64_t{3}));
  if (kind == 0 && static_cast<int>(current.size()) < m) {
    // Add a target not in the set.
    std::vector<int> candidates;
    for (int j = 0; j < m; ++j) {
      if (std::find(current.begin(), current.end(), j) == current.end()) {
        candidates.push_back(j);
      }
    }
    if (candidates.empty()) return false;
    proposed->push_back(
        candidates[rng->UniformInt(candidates.size())]);
    std::sort(proposed->begin(), proposed->end());
    return true;
  }
  if (kind == 1 && current.size() > 1) {
    // Remove one target.
    proposed->erase(proposed->begin() +
                    static_cast<std::ptrdiff_t>(
                        rng->UniformInt(proposed->size())));
    return true;
  }
  // Swap one target for an unused one.
  std::vector<int> unused;
  for (int j = 0; j < m; ++j) {
    if (std::find(current.begin(), current.end(), j) == current.end()) {
      unused.push_back(j);
    }
  }
  if (unused.empty()) return false;
  (*proposed)[rng->UniformInt(proposed->size())] =
      unused[rng->UniformInt(unused.size())];
  std::sort(proposed->begin(), proposed->end());
  return true;
}

/// Checks the allowed-targets and separation constraints for setting
/// object i's stripe set to `targets` within `layout`.
bool MoveSatisfiesConstraints(const LayoutNlpProblem& p, const Layout& layout,
                              int i, const std::vector<int>& targets) {
  const std::vector<int>& allowed = p.constraints.AllowedFor(i);
  if (!allowed.empty()) {
    for (int j : targets) {
      if (std::find(allowed.begin(), allowed.end(), j) == allowed.end()) {
        return false;
      }
    }
  }
  for (const auto& [a, b] : p.constraints.separate) {
    const int partner = a == i ? b : (b == i ? a : -1);
    if (partner < 0) continue;
    for (int j : targets) {
      if (layout.At(partner, j) > 1e-9) return false;
    }
  }
  return true;
}

}  // namespace

RandomizedSearchSolver::RandomizedSearchSolver(
    RandomizedSearchOptions options)
    : options_(options) {}

Result<SolverResult> RandomizedSearchSolver::Solve(
    const LayoutNlpProblem& problem, const Layout& initial) const {
  if (problem.num_objects <= 0 || problem.num_targets <= 0 ||
      !problem.target_utilization) {
    return Status::InvalidArgument("malformed problem");
  }
  LDB_RETURN_IF_ERROR(
      problem.constraints.Validate(problem.num_objects, problem.num_targets));
  if (initial.num_objects() != problem.num_objects ||
      initial.num_targets() != problem.num_targets) {
    return Status::InvalidArgument("initial layout dimension mismatch");
  }
  if (!initial.IsRegular(1e-9) ||
      !initial.IsValid(problem.object_sizes, problem.target_capacities)) {
    return Status::InvalidArgument(
        "randomized search needs a valid regular seed");
  }
  if (options_.iterations <= 0 || options_.initial_temperature <= 0 ||
      options_.final_temperature <= 0) {
    return Status::InvalidArgument("bad search options");
  }

  const int n = problem.num_objects;
  const int m = problem.num_targets;
  Rng rng(options_.seed);

  SolverResult result;
  result.layout = initial;
  Layout& x = result.layout;

  std::vector<double> mu(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    mu[static_cast<size_t>(j)] = problem.target_utilization(x, j);
    ++result.objective_evaluations;
  }
  double objective = *std::max_element(mu.begin(), mu.end());
  Layout best = x;
  double best_objective = objective;

  const double t0 = options_.initial_temperature * std::max(1e-9, objective);
  const double t1 = options_.final_temperature * std::max(1e-9, objective);
  const double cooling =
      std::pow(t1 / t0, 1.0 / std::max(1, options_.iterations - 1));
  double temperature = t0;

  std::vector<int> proposed;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    ++result.iterations;
    const int i = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const std::vector<int> current = x.TargetsOf(i);
    if (!ProposeMove(problem, current, &rng, &proposed)) {
      temperature *= cooling;
      continue;
    }
    if (!MoveSatisfiesConstraints(problem, x, i, proposed)) {
      temperature *= cooling;
      continue;
    }
    x.SetRowRegular(i, proposed);
    if (!x.SatisfiesCapacity(problem.object_sizes,
                             problem.target_capacities)) {
      x.SetRowRegular(i, current);
      temperature *= cooling;
      continue;
    }
    // Incremental evaluation: recompute only the touched targets.
    std::vector<double> trial_mu = mu;
    for (int j = 0; j < m; ++j) {
      const bool touched =
          std::find(current.begin(), current.end(), j) != current.end() ||
          std::find(proposed.begin(), proposed.end(), j) != proposed.end();
      if (touched) {
        trial_mu[static_cast<size_t>(j)] = problem.target_utilization(x, j);
        ++result.objective_evaluations;
      }
    }
    const double trial_objective =
        *std::max_element(trial_mu.begin(), trial_mu.end());
    const double delta = trial_objective - objective;
    if (delta <= 0 || rng.Bernoulli(std::exp(-delta / temperature))) {
      mu = std::move(trial_mu);
      objective = trial_objective;
      if (objective < best_objective) {
        best_objective = objective;
        best = x;
      }
    } else {
      x.SetRowRegular(i, current);
    }
    temperature *= cooling;
  }

  result.layout = best;
  result.max_utilization = best_objective;
  result.feasible =
      best.IsValid(problem.object_sizes, problem.target_capacities) &&
      problem.constraints.SatisfiedBy(best);
  return result;
}

}  // namespace ldb
