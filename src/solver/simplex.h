#ifndef LAYOUTDB_SOLVER_SIMPLEX_H_
#define LAYOUTDB_SOLVER_SIMPLEX_H_

#include <cstddef>
#include <vector>

namespace ldb {

/// Euclidean projection of `v` (length n, modified in place) onto the
/// scaled probability simplex { x : x >= 0, sum x = radius }.
///
/// Implements the O(n log n) sort-and-threshold algorithm (Held/Wolfe/
/// Crowder; popularized by Duchi et al.). This is the feasibility engine of
/// the projected-gradient layout solver: every layout row must stay on the
/// unit simplex (the paper's integrity constraint).
///
/// `scratch`, when provided, is reused for the internal sort buffer so
/// repeated projections (the solver projects every row every line-search
/// step) allocate nothing after warm-up.
void ProjectToSimplex(double* v, size_t n, double radius = 1.0,
                      std::vector<double>* scratch = nullptr);

/// log-sum-exp smooth approximation of max(values):
///   smoothmax_t(v) = (1/t) * log(sum_j exp(t * v_j))
/// computed stably. As t grows the approximation tightens from above
/// (error <= log(n)/t). The layout solver anneals t upward to optimize the
/// non-smooth max-utilization objective with gradient steps.
double SmoothMax(const double* values, size_t n, double t);

/// SmoothMax of `values` with element `idx` replaced by `replacement`,
/// without materializing the substituted array. This is the solver's
/// finite-difference form: perturbing one layout entry changes exactly one
/// µ_j, so the smooth objective is re-evaluated allocation-free.
double SmoothMaxSubstituted(const double* values, size_t n, size_t idx,
                            double replacement, double t);

}  // namespace ldb

#endif  // LAYOUTDB_SOLVER_SIMPLEX_H_
