#include "solver/layout_nlp.h"

#include <vector>

namespace ldb {

bool LayoutNlpProblem::Gradient(const Layout& layout,
                                double* grad_out) const {
  if (!make_column_eval || grad_out == nullptr) return false;
  const size_t un = static_cast<size_t>(num_objects);
  const size_t um = static_cast<size_t>(num_targets);
  std::vector<double> col(un);
  for (int j = 0; j < num_targets; ++j) {
    std::unique_ptr<ColumnEvaluator> eval = make_column_eval(j);
    if (eval == nullptr || !eval->SupportsGradient()) return false;
    eval->EvaluateWithGradient(layout, col.data());
    for (size_t i = 0; i < un; ++i) {
      grad_out[i * um + static_cast<size_t>(j)] = col[i];
    }
  }
  return true;
}

}  // namespace ldb
