#ifndef LAYOUTDB_SOLVER_RANDOMIZED_H_
#define LAYOUTDB_SOLVER_RANDOMIZED_H_

#include <cstdint>

#include "solver/layout_nlp.h"
#include "util/status.h"

namespace ldb {

/// Options for the randomized layout search.
struct RandomizedSearchOptions {
  int iterations = 20000;
  /// Initial acceptance temperature, relative to the seed's objective.
  double initial_temperature = 0.25;
  /// Final temperature, relative to the seed's objective.
  double final_temperature = 1e-3;
  uint64_t seed = 42;
};

/// Randomized (simulated-annealing) layout search — the alternative solver
/// the paper sketches in Section 7 after HP's Disk Array Designer: "It
/// should be possible to design a similar randomized search technique to
/// solve the layout problem faced by our layout advisor — this would be an
/// alternative to the NLP solver."
///
/// Unlike the NLP solver it searches *regular* layouts directly (each move
/// adds, removes, or swaps one target in one object's stripe set), so no
/// regularization step is needed; its output is immediately
/// LVM-implementable. Capacity and placement constraints are enforced per
/// move. Moves are evaluated incrementally: only the touched targets'
/// utilizations are recomputed.
class RandomizedSearchSolver {
 public:
  explicit RandomizedSearchSolver(RandomizedSearchOptions options = {});

  /// Runs the search from `initial`, which must be a valid regular layout.
  /// Returns the best feasible layout visited.
  Result<SolverResult> Solve(const LayoutNlpProblem& problem,
                             const Layout& initial) const;

 private:
  RandomizedSearchOptions options_;
};

}  // namespace ldb

#endif  // LAYOUTDB_SOLVER_RANDOMIZED_H_
