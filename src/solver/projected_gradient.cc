#include "solver/projected_gradient.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "solver/simplex.h"
#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

Status ValidateProblem(const LayoutNlpProblem& p, const Layout& initial) {
  if (p.num_objects <= 0 || p.num_targets <= 0) {
    return Status::InvalidArgument("problem dimensions must be positive");
  }
  if (p.object_sizes.size() != static_cast<size_t>(p.num_objects) ||
      p.target_capacities.size() != static_cast<size_t>(p.num_targets)) {
    return Status::InvalidArgument("sizes/capacities dimension mismatch");
  }
  for (int64_t s : p.object_sizes) {
    if (s <= 0) return Status::InvalidArgument("object sizes must be > 0");
  }
  for (int64_t c : p.target_capacities) {
    if (c <= 0) return Status::InvalidArgument("capacities must be > 0");
  }
  if (!p.target_utilization) {
    return Status::InvalidArgument("target_utilization function required");
  }
  if (initial.num_objects() != p.num_objects ||
      initial.num_targets() != p.num_targets) {
    return Status::InvalidArgument("initial layout dimension mismatch");
  }
  return p.constraints.Validate(p.num_objects, p.num_targets);
}

/// Projects row `i` onto its feasible simplex: the full simplex when the
/// object is unrestricted, else the sub-simplex spanned by its allowed
/// targets (disallowed coordinates are zeroed).
void ProjectRowConstrained(const LayoutNlpProblem& p, int i, double* row) {
  const std::vector<int>& allowed = p.constraints.AllowedFor(i);
  if (allowed.empty()) {
    ProjectToSimplex(row, static_cast<size_t>(p.num_targets));
    return;
  }
  std::vector<double> sub;
  sub.reserve(allowed.size());
  for (int j : allowed) sub.push_back(row[j]);
  ProjectToSimplex(sub.data(), sub.size());
  for (int j = 0; j < p.num_targets; ++j) row[j] = 0.0;
  for (size_t k = 0; k < allowed.size(); ++k) {
    row[allowed[k]] = sub[k];
  }
}

/// Quadratic separation penalty: sum over constrained pairs of the
/// pairwise co-location mass Σ_j L_aj * L_bj.
double SeparationPenalty(const LayoutNlpProblem& p, const Layout& layout) {
  double total = 0.0;
  for (const auto& [a, b] : p.constraints.separate) {
    for (int j = 0; j < p.num_targets; ++j) {
      total += layout.At(a, j) * layout.At(b, j);
    }
  }
  return total;
}

/// Working evaluation state for one candidate layout: cached per-target
/// utilizations and assigned bytes, and the composite objective.
class Evaluator {
 public:
  Evaluator(const LayoutNlpProblem& p, int* eval_counter)
      : p_(p), eval_counter_(eval_counter) {}

  /// Fully (re)computes caches for `layout`.
  void Refresh(const Layout& layout) {
    const int m = p_.num_targets;
    mu_.resize(static_cast<size_t>(m));
    bytes_.assign(static_cast<size_t>(m), 0.0);
    for (int j = 0; j < m; ++j) {
      mu_[static_cast<size_t>(j)] = p_.target_utilization(layout, j);
      ++*eval_counter_;
    }
    for (int i = 0; i < p_.num_objects; ++i) {
      const double s =
          static_cast<double>(p_.object_sizes[static_cast<size_t>(i)]);
      for (int j = 0; j < m; ++j) {
        bytes_[static_cast<size_t>(j)] += layout.At(i, j) * s;
      }
    }
    separation_ = SeparationPenalty(p_, layout);
  }

  /// Composite objective from the current caches.
  double Objective(double temp, double penalty) const {
    return SmoothMax(mu_.data(), mu_.size(), temp) +
           penalty * (PenaltyFromBytes(bytes_) + separation_);
  }

  /// Composite objective with column j's cache entries replaced — the cheap
  /// evaluation used by coordinate finite differences. `layout` must hold
  /// the perturbed values (needed for the separation penalty).
  double ObjectiveWithColumn(const Layout& layout, int j, double mu_j,
                             double bytes_j, double temp,
                             double penalty) const {
    std::vector<double> mu = mu_;
    mu[static_cast<size_t>(j)] = mu_j;
    std::vector<double> bytes = bytes_;
    bytes[static_cast<size_t>(j)] = bytes_j;
    const double sep = p_.constraints.separate.empty()
                           ? 0.0
                           : SeparationPenalty(p_, layout);
    return SmoothMax(mu.data(), mu.size(), temp) +
           penalty * (PenaltyFromBytes(bytes) + sep);
  }

  double PenaltyFromBytes(const std::vector<double>& bytes) const {
    double total = 0.0;
    for (int j = 0; j < p_.num_targets; ++j) {
      const double cap =
          static_cast<double>(p_.target_capacities[static_cast<size_t>(j)]);
      const double over = (bytes[static_cast<size_t>(j)] - cap) / cap;
      if (over > 0.0) total += over * over;
    }
    return total;
  }

  double TrueMax() const { return *std::max_element(mu_.begin(), mu_.end()); }
  const std::vector<double>& mu() const { return mu_; }
  double bytes(int j) const { return bytes_[static_cast<size_t>(j)]; }

 private:
  const LayoutNlpProblem& p_;
  int* eval_counter_;
  std::vector<double> mu_;
  std::vector<double> bytes_;
  double separation_ = 0.0;
};

/// Greedy feasibility repair: shifts fractions of objects off over-full
/// targets onto targets with free bytes. Used when the penalty method
/// leaves a small residual violation.
void RepairCapacity(const LayoutNlpProblem& p, Layout* layout) {
  const int n = p.num_objects;
  const int m = p.num_targets;
  for (int pass = 0; pass < 4 * m; ++pass) {
    std::vector<double> bytes(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < n; ++i) {
      const double s =
          static_cast<double>(p.object_sizes[static_cast<size_t>(i)]);
      for (int j = 0; j < m; ++j) {
        bytes[static_cast<size_t>(j)] += layout->At(i, j) * s;
      }
    }
    // Most over-full target.
    int worst = -1;
    double worst_over = 0.0;
    for (int j = 0; j < m; ++j) {
      const double over =
          bytes[static_cast<size_t>(j)] -
          static_cast<double>(p.target_capacities[static_cast<size_t>(j)]);
      if (over > worst_over) {
        worst_over = over;
        worst = j;
      }
    }
    if (worst < 0) return;  // feasible

    // Donor object and receiver target: the donor with the largest byte
    // footprint on the over-full target that has an allowed target with
    // free space to move to.
    int donor = -1;
    int dest = -1;
    double donor_bytes = 0.0;
    double best_free = 0.0;
    for (int i = 0; i < n; ++i) {
      const double b =
          layout->At(i, worst) *
          static_cast<double>(p.object_sizes[static_cast<size_t>(i)]);
      if (b <= donor_bytes) continue;
      const std::vector<int>& allowed = p.constraints.AllowedFor(i);
      int candidate_dest = -1;
      double candidate_free = 0.0;
      for (int j = 0; j < m; ++j) {
        if (j == worst) continue;
        if (!allowed.empty() &&
            std::find(allowed.begin(), allowed.end(), j) == allowed.end()) {
          continue;
        }
        const double free = static_cast<double>(
                                p.target_capacities[static_cast<size_t>(j)]) -
                            bytes[static_cast<size_t>(j)];
        if (free > candidate_free) {
          candidate_free = free;
          candidate_dest = j;
        }
      }
      if (candidate_dest < 0) continue;
      donor = i;
      donor_bytes = b;
      dest = candidate_dest;
      best_free = candidate_free;
    }
    if (donor < 0 || dest < 0) return;  // nowhere to move (caller sees flag)
    const double si =
        static_cast<double>(p.object_sizes[static_cast<size_t>(donor)]);
    // Overshoot slightly: per-entry byte accounting rounds up, so landing
    // exactly on the capacity boundary would still register as a violation.
    const double margin = static_cast<double>(n + 1);
    const double move_bytes =
        std::min({worst_over + margin, best_free, donor_bytes});
    const double delta = move_bytes / si;
    layout->Set(donor, worst, layout->At(donor, worst) - delta);
    layout->Set(donor, dest, layout->At(donor, dest) + delta);
  }
}

}  // namespace

ProjectedGradientSolver::ProjectedGradientSolver(SolverOptions options)
    : options_(options) {}

Result<SolverResult> ProjectedGradientSolver::Solve(
    const LayoutNlpProblem& problem, const Layout& initial) const {
  LDB_RETURN_IF_ERROR(ValidateProblem(problem, initial));
  const int n = problem.num_objects;
  const int m = problem.num_targets;

  SolverResult result;
  result.layout = initial;
  // Project the seed onto the feasible (integrity + allowed-target) set.
  for (int i = 0; i < n; ++i) {
    ProjectRowConstrained(problem, i, result.layout.Row(i));
  }

  Evaluator eval(problem, &result.objective_evaluations);
  eval.Refresh(result.layout);

  Layout& x = result.layout;
  std::vector<double> grad(static_cast<size_t>(n) * static_cast<size_t>(m));
  double step = options_.initial_step;

  double temp = options_.smoothmax_t0;
  double penalty = options_.penalty0;
  for (int round = 0; round < options_.annealing_rounds; ++round) {
    double f = eval.Objective(temp, penalty);
    int stall = 0;
    for (int iter = 0; iter < options_.max_iterations_per_round; ++iter) {
      ++result.iterations;

      // Central finite differences, one column re-evaluation per coordinate.
      const double h = options_.fd_step;
      double grad_norm2 = 0.0;
      for (int i = 0; i < n; ++i) {
        const double si =
            static_cast<double>(problem.object_sizes[static_cast<size_t>(i)]);
        for (int j = 0; j < m; ++j) {
          const double v = x.At(i, j);
          const double lo = std::max(0.0, v - h);
          const double hi = std::min(1.0, v + h);
          if (hi - lo < 1e-12) {
            grad[static_cast<size_t>(i) * static_cast<size_t>(m) +
                 static_cast<size_t>(j)] = 0.0;
            continue;
          }
          x.Set(i, j, hi);
          const double mu_hi = problem.target_utilization(x, j);
          const double f_hi = eval.ObjectiveWithColumn(
              x, j, mu_hi, eval.bytes(j) + (hi - v) * si, temp, penalty);
          x.Set(i, j, lo);
          const double mu_lo = problem.target_utilization(x, j);
          const double f_lo = eval.ObjectiveWithColumn(
              x, j, mu_lo, eval.bytes(j) + (lo - v) * si, temp, penalty);
          x.Set(i, j, v);
          result.objective_evaluations += 2;
          const double g = (f_hi - f_lo) / (hi - lo);
          grad[static_cast<size_t>(i) * static_cast<size_t>(m) +
               static_cast<size_t>(j)] = g;
          grad_norm2 += g * g;
        }
      }
      if (grad_norm2 < 1e-18) break;

      // Backtracking projected-gradient step.
      Layout best = x;
      double f_best = f;
      bool accepted = false;
      double alpha = step;
      for (int bt = 0; bt < options_.max_backtracks; ++bt) {
        Layout trial = x;
        for (int i = 0; i < n; ++i) {
          double* row = trial.Row(i);
          const double* grow =
              &grad[static_cast<size_t>(i) * static_cast<size_t>(m)];
          for (int j = 0; j < m; ++j) row[j] -= alpha * grow[j];
          ProjectRowConstrained(problem, i, row);
        }
        Evaluator trial_eval(problem, &result.objective_evaluations);
        trial_eval.Refresh(trial);
        const double f_trial = trial_eval.Objective(temp, penalty);
        if (f_trial < f - options_.armijo_c * alpha * grad_norm2) {
          best = trial;
          f_best = f_trial;
          accepted = true;
          break;
        }
        alpha *= options_.backtrack;
      }
      if (!accepted) break;  // no descent direction at this temperature

      const double improvement = (f - f_best) / std::max(1e-12, std::fabs(f));
      x = best;
      eval.Refresh(x);
      f = eval.Objective(temp, penalty);
      step = std::min(options_.initial_step, alpha * 2.0);
      if (improvement < options_.tolerance) {
        if (++stall >= options_.patience) break;
      } else {
        stall = 0;
      }
    }
    temp *= options_.smoothmax_growth;
    penalty *= options_.penalty_growth;
  }

  // Penalty methods can leave a small capacity violation; repair greedily.
  if (!x.SatisfiesCapacity(problem.object_sizes, problem.target_capacities)) {
    RepairCapacity(problem, &x);
    eval.Refresh(x);
  }

  result.feasible =
      x.IsValid(problem.object_sizes, problem.target_capacities, 1e-6) &&
      problem.constraints.SatisfiedBy(x, /*tol=*/1e-3);
  result.max_utilization = eval.TrueMax();
  return result;
}

}  // namespace ldb
