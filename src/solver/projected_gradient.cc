#include "solver/projected_gradient.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "solver/simplex.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace ldb {

namespace {

/// Monotonic nanoseconds for the per-phase profiling counters. Timings are
/// observability only — they never feed back into the optimization, so the
/// solve stays deterministic.
int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Which machinery the evaluation engine runs on.
enum class EvalEngine {
  kBlackBox,     ///< target_utilization only (full µ_j per evaluation)
  kIncremental,  ///< column contexts: Rebuild + rank-1 WithObject FD
  kAnalytic,     ///< column contexts: batched Evaluate / fused gradients
};

Status ValidateProblem(const LayoutNlpProblem& p, const Layout& initial) {
  if (p.num_objects <= 0 || p.num_targets <= 0) {
    return Status::InvalidArgument("problem dimensions must be positive");
  }
  if (p.object_sizes.size() != static_cast<size_t>(p.num_objects) ||
      p.target_capacities.size() != static_cast<size_t>(p.num_targets)) {
    return Status::InvalidArgument("sizes/capacities dimension mismatch");
  }
  for (int64_t s : p.object_sizes) {
    if (s <= 0) return Status::InvalidArgument("object sizes must be > 0");
  }
  for (int64_t c : p.target_capacities) {
    if (c <= 0) return Status::InvalidArgument("capacities must be > 0");
  }
  if (!p.target_utilization) {
    return Status::InvalidArgument("target_utilization function required");
  }
  if (initial.num_objects() != p.num_objects ||
      initial.num_targets() != p.num_targets) {
    return Status::InvalidArgument("initial layout dimension mismatch");
  }
  if (!p.frozen_rows.empty() &&
      p.frozen_rows.size() != static_cast<size_t>(p.num_objects)) {
    return Status::InvalidArgument("frozen_rows dimension mismatch");
  }
  return p.constraints.Validate(p.num_objects, p.num_targets);
}

/// True when row i is frozen: kept verbatim from the initial layout.
bool RowFrozen(const LayoutNlpProblem& p, int i) {
  return !p.frozen_rows.empty() &&
         p.frozen_rows[static_cast<size_t>(i)] != 0;
}

/// Projects row `i` onto its feasible simplex: the full simplex when the
/// object is unrestricted, else the sub-simplex spanned by its allowed
/// targets (disallowed coordinates are zeroed). The two scratch vectors are
/// reused across calls so the per-row line-search projections allocate
/// nothing after warm-up.
void ProjectRowConstrained(const LayoutNlpProblem& p, int i, double* row,
                           std::vector<double>* sub_scratch,
                           std::vector<double>* sort_scratch) {
  const std::vector<int>& allowed = p.constraints.AllowedFor(i);
  if (allowed.empty()) {
    ProjectToSimplex(row, static_cast<size_t>(p.num_targets), 1.0,
                     sort_scratch);
    return;
  }
  std::vector<double>& sub = *sub_scratch;
  sub.clear();
  for (int j : allowed) sub.push_back(row[j]);
  ProjectToSimplex(sub.data(), sub.size(), 1.0, sort_scratch);
  for (int j = 0; j < p.num_targets; ++j) row[j] = 0.0;
  for (size_t k = 0; k < allowed.size(); ++k) {
    row[allowed[k]] = sub[k];
  }
}

/// Quadratic separation penalty: sum over constrained pairs of the
/// pairwise co-location mass Σ_j L_aj * L_bj.
double SeparationPenalty(const LayoutNlpProblem& p, const Layout& layout) {
  double total = 0.0;
  for (const auto& [a, b] : p.constraints.separate) {
    for (int j = 0; j < p.num_targets; ++j) {
      total += layout.At(a, j) * layout.At(b, j);
    }
  }
  return total;
}

/// Working evaluation state for one candidate layout: cached per-target
/// utilizations, assigned bytes, per-target capacity-penalty terms, the
/// separation penalty, and (when the problem provides them) the
/// incremental per-column evaluators used by the finite-difference fast
/// path. Refresh runs its per-column work on the pool when one is given;
/// every reduction stays serial so results are thread-count invariant.
class Evaluator {
 public:
  Evaluator(const LayoutNlpProblem& p, ThreadPool* pool, EvalEngine engine,
            int64_t* eval_counter)
      : p_(p), pool_(pool), engine_(engine), eval_counter_(eval_counter) {
    if (engine_ != EvalEngine::kBlackBox && p.make_column_eval) {
      contexts_.reserve(static_cast<size_t>(p.num_targets));
      for (int j = 0; j < p.num_targets; ++j) {
        contexts_.push_back(p.make_column_eval(j));
      }
    }
    if (contexts_.empty()) engine_ = EvalEngine::kBlackBox;
    partners_.resize(static_cast<size_t>(p.num_objects));
    for (const auto& [a, b] : p.constraints.separate) {
      partners_[static_cast<size_t>(a)].push_back(b);
      partners_[static_cast<size_t>(b)].push_back(a);
    }
  }

  EvalEngine engine() const { return engine_; }

  /// Fully (re)computes caches for `layout`. Column evaluations fan out
  /// over the pool; each writes its own slot.
  void Refresh(const Layout& layout) {
    const int m = p_.num_targets;
    mu_.resize(static_cast<size_t>(m));
    auto column = [&](int, int64_t j) {
      const size_t uj = static_cast<size_t>(j);
      if (engine_ == EvalEngine::kAnalytic) {
        mu_[uj] = contexts_[uj]->Evaluate(layout);
      } else if (engine_ == EvalEngine::kIncremental) {
        contexts_[uj]->Rebuild(layout);
        mu_[uj] = contexts_[uj]->Base();
      } else {
        mu_[uj] = p_.target_utilization(layout, static_cast<int>(j));
      }
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(m, column);
    } else {
      for (int j = 0; j < m; ++j) column(0, j);
    }
    *eval_counter_ += m;

    bytes_.assign(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < p_.num_objects; ++i) {
      const double s =
          static_cast<double>(p_.object_sizes[static_cast<size_t>(i)]);
      for (int j = 0; j < m; ++j) {
        bytes_[static_cast<size_t>(j)] += layout.At(i, j) * s;
      }
    }
    penalty_terms_.resize(static_cast<size_t>(m));
    penalty_sum_ = 0.0;
    for (int j = 0; j < m; ++j) {
      const double term = CapacityTerm(j, bytes_[static_cast<size_t>(j)]);
      penalty_terms_[static_cast<size_t>(j)] = term;
      penalty_sum_ += term;
    }
    separation_ = SeparationPenalty(p_, layout);
  }

  /// Composite objective from the current caches.
  double Objective(double temp, double penalty) const {
    return SmoothMax(mu_.data(), mu_.size(), temp) +
           penalty * (penalty_sum_ + separation_);
  }

  /// Composite objective with column j's µ, bytes, and the separation
  /// penalty substituted — the allocation-free evaluation behind the
  /// coordinate finite differences.
  double ObjectiveWithColumn(int j, double mu_j, double bytes_j, double sep,
                             double temp, double penalty) const {
    const size_t uj = static_cast<size_t>(j);
    return SmoothMaxSubstituted(mu_.data(), mu_.size(), uj, mu_j, temp) +
           penalty *
               (penalty_sum_ - penalty_terms_[uj] + CapacityTerm(j, bytes_j) +
                sep);
  }

  /// Relative-overflow penalty term of one target.
  double CapacityTerm(int j, double bytes) const {
    const double cap =
        static_cast<double>(p_.target_capacities[static_cast<size_t>(j)]);
    const double over = (bytes - cap) / cap;
    return over > 0.0 ? over * over : 0.0;
  }

  /// Co-located separation-partner mass of object i on target j — the
  /// linear coefficient of the separation penalty in L_ij.
  double PartnerMass(int i, int j, const Layout& layout) const {
    double total = 0.0;
    for (int partner : partners_[static_cast<size_t>(i)]) {
      total += layout.At(partner, j);
    }
    return total;
  }

  ColumnEvaluator* context(int j) const {
    return contexts_.empty() ? nullptr
                             : contexts_[static_cast<size_t>(j)].get();
  }

  /// Copies another evaluator's caches wholesale. Valid only when this
  /// engine keeps no per-layout context state (the analytic engine's
  /// contexts are pure batched kernels) — it spares the accepted-step
  /// double evaluation: the line search just computed these exact values
  /// for the accepted trial layout.
  void AdoptState(const Evaluator& o) {
    mu_ = o.mu_;
    bytes_ = o.bytes_;
    penalty_terms_ = o.penalty_terms_;
    penalty_sum_ = o.penalty_sum_;
    separation_ = o.separation_;
  }

  /// Interpolator queries issued by this evaluator's batched kernels,
  /// summed serially in column order.
  int64_t TotalInterpQueries() const {
    int64_t total = 0;
    for (const auto& ctx : contexts_) {
      if (ctx != nullptr) total += ctx->interp_queries();
    }
    return total;
  }

  double TrueMax() const { return *std::max_element(mu_.begin(), mu_.end()); }
  const std::vector<double>& mu() const { return mu_; }
  double bytes(int j) const { return bytes_[static_cast<size_t>(j)]; }
  double separation() const { return separation_; }

 private:
  const LayoutNlpProblem& p_;
  ThreadPool* pool_;
  EvalEngine engine_;
  int64_t* eval_counter_;
  std::vector<std::unique_ptr<ColumnEvaluator>> contexts_;
  std::vector<std::vector<int>> partners_;
  std::vector<double> mu_;
  std::vector<double> bytes_;
  std::vector<double> penalty_terms_;
  double penalty_sum_ = 0.0;
  double separation_ = 0.0;
};

/// Greedy feasibility repair: shifts fractions of objects off over-full
/// targets onto targets with free bytes. Used when the penalty method
/// leaves a small residual violation.
void RepairCapacity(const LayoutNlpProblem& p, Layout* layout) {
  const int n = p.num_objects;
  const int m = p.num_targets;
  std::vector<double> bytes(static_cast<size_t>(m));
  for (int pass = 0; pass < 4 * m; ++pass) {
    std::fill(bytes.begin(), bytes.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      const double s =
          static_cast<double>(p.object_sizes[static_cast<size_t>(i)]);
      for (int j = 0; j < m; ++j) {
        bytes[static_cast<size_t>(j)] += layout->At(i, j) * s;
      }
    }
    // Most over-full target.
    int worst = -1;
    double worst_over = 0.0;
    for (int j = 0; j < m; ++j) {
      const double over =
          bytes[static_cast<size_t>(j)] -
          static_cast<double>(p.target_capacities[static_cast<size_t>(j)]);
      if (over > worst_over) {
        worst_over = over;
        worst = j;
      }
    }
    if (worst < 0) return;  // feasible

    // Donor object and receiver target: the donor with the largest byte
    // footprint on the over-full target that has an allowed target with
    // free space to move to.
    int donor = -1;
    int dest = -1;
    double donor_bytes = 0.0;
    double best_free = 0.0;
    for (int i = 0; i < n; ++i) {
      if (RowFrozen(p, i)) continue;  // frozen rows never donate
      const double b =
          layout->At(i, worst) *
          static_cast<double>(p.object_sizes[static_cast<size_t>(i)]);
      if (b <= donor_bytes) continue;
      const std::vector<int>& allowed = p.constraints.AllowedFor(i);
      int candidate_dest = -1;
      double candidate_free = 0.0;
      for (int j = 0; j < m; ++j) {
        if (j == worst) continue;
        if (!allowed.empty() &&
            std::find(allowed.begin(), allowed.end(), j) == allowed.end()) {
          continue;
        }
        const double free = static_cast<double>(
                                p.target_capacities[static_cast<size_t>(j)]) -
                            bytes[static_cast<size_t>(j)];
        if (free > candidate_free) {
          candidate_free = free;
          candidate_dest = j;
        }
      }
      if (candidate_dest < 0) continue;
      donor = i;
      donor_bytes = b;
      dest = candidate_dest;
      best_free = candidate_free;
    }
    if (donor < 0 || dest < 0) return;  // nowhere to move (caller sees flag)
    const double si =
        static_cast<double>(p.object_sizes[static_cast<size_t>(donor)]);
    // Overshoot slightly: per-entry byte accounting rounds up, so landing
    // exactly on the capacity boundary would still register as a violation.
    const double margin = static_cast<double>(n + 1);
    const double move_bytes =
        std::min({worst_over + margin, best_free, donor_bytes});
    const double delta = move_bytes / si;
    layout->Set(donor, worst, layout->At(donor, worst) - delta);
    layout->Set(donor, dest, layout->At(donor, dest) + delta);
  }
}

}  // namespace

ProjectedGradientSolver::ProjectedGradientSolver(SolverOptions options)
    : options_(options) {}

Result<SolverResult> ProjectedGradientSolver::Solve(
    const LayoutNlpProblem& problem, const Layout& initial) const {
  LDB_RETURN_IF_ERROR(ValidateProblem(problem, initial));
  const int n = problem.num_objects;
  const int m = problem.num_targets;

  const int threads = ThreadPool::EffectiveThreads(options_.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const int lanes = pool != nullptr ? pool->num_threads() : 1;

  SolverResult result;
  result.layout = initial;
  // Project the seed onto the feasible (integrity + allowed-target) set.
  // Frozen rows are trusted as-is: they come from the surviving layout.
  std::vector<double> sub_scratch, sort_scratch;
  for (int i = 0; i < n; ++i) {
    if (RowFrozen(problem, i)) continue;
    ProjectRowConstrained(problem, i, result.layout.Row(i), &sub_scratch,
                          &sort_scratch);
  }

  // Engine selection. Analytic mode needs evaluators with fused gradient
  // support; without them (or in kFd mode) the finite-difference engine
  // runs, through the incremental column caches when enabled. The choice
  // depends only on the problem and options, never on thread count.
  EvalEngine engine = EvalEngine::kBlackBox;
  if (problem.make_column_eval) {
    bool analytic_ok = false;
    if (options_.gradient_mode == GradientMode::kAnalytic) {
      const std::unique_ptr<ColumnEvaluator> probe =
          problem.make_column_eval(0);
      analytic_ok = probe != nullptr && probe->SupportsGradient();
    }
    engine = analytic_ok ? EvalEngine::kAnalytic
             : options_.use_incremental_cache ? EvalEngine::kIncremental
                                              : EvalEngine::kBlackBox;
  }

  const int64_t solve_t0 = NowNanos();
  Evaluator eval(problem, pool.get(), engine,
                 &result.objective_evaluations);
  engine = eval.engine();  // honor the evaluator's downgrade, if any
  {
    const int64_t t0 = NowNanos();
    eval.Refresh(result.layout);
    result.profile.refresh.calls += 1;
    result.profile.refresh.ns += NowNanos() - t0;
  }
  if (options_.record_trace) {
    result.trace.push_back({0, NowNanos() - solve_t0, eval.TrueMax()});
  }
  // Line-search evaluator: full refreshes only. The analytic engine gives
  // it the batched per-column kernels; otherwise it prices µ_j black-box
  // (no incremental contexts — those would be rebuilt per trial anyway).
  Evaluator trial_eval(problem, pool.get(),
                       engine == EvalEngine::kAnalytic
                           ? EvalEngine::kAnalytic
                           : EvalEngine::kBlackBox,
                       &result.objective_evaluations);

  Layout& x = result.layout;
  std::vector<double> grad(static_cast<size_t>(n) * static_cast<size_t>(m));
  // Analytic sweep scratch: per-column ∂µ_j/∂L_·j slots (column-major so
  // each parallel column task writes one contiguous span), SmoothMax
  // weights, and capacity-penalty slopes.
  std::vector<double> dmu;
  std::vector<double> smw;
  std::vector<double> dcap;
  if (engine == EvalEngine::kAnalytic) {
    dmu.resize(static_cast<size_t>(n) * static_cast<size_t>(m));
    smw.resize(static_cast<size_t>(m));
    dcap.resize(static_cast<size_t>(m));
  }
  // Per-lane scratch layouts for the fallback (black-box) FD path; each
  // lane perturbs its own copy of x, never x itself.
  std::vector<Layout> fd_scratch(static_cast<size_t>(lanes), Layout(1, 1));
  std::vector<char> fd_scratch_fresh(static_cast<size_t>(lanes), 0);
  // Per-column effort counters, summed serially after each parallel sweep.
  std::vector<int64_t> col_full(static_cast<size_t>(m));
  std::vector<int64_t> col_inc(static_cast<size_t>(m));
  Layout trial(n, m);
  double step = options_.initial_step;

  double temp = options_.smoothmax_t0;
  double penalty = options_.penalty0;
  for (int round = 0; round < options_.annealing_rounds; ++round) {
    double f = eval.Objective(temp, penalty);
    int stall = 0;
    for (int iter = 0; iter < options_.max_iterations_per_round; ++iter) {
      ++result.iterations;

      const int64_t grad_t0 = NowNanos();
      if (engine == EvalEngine::kAnalytic) {
        // Fused analytic sweep: one batched value+gradient pass per column
        // fills ∂µ_j/∂L_·j into that column's disjoint dmu span; the
        // SmoothMax and penalty compositions are then chain-ruled serially
        // in index order, so the gradient is bit-identical for every
        // thread count. Cost per step: M kernel passes, not 2·N·M
        // objective perturbations.
        auto grad_column = [&](int, int64_t jj) {
          const size_t uj = static_cast<size_t>(jj);
          eval.context(static_cast<int>(jj))
              ->EvaluateWithGradient(x, &dmu[uj * static_cast<size_t>(n)]);
        };
        if (pool != nullptr) {
          pool->ParallelFor(m, grad_column);
        } else {
          for (int j = 0; j < m; ++j) grad_column(0, j);
        }
        result.gradient_evaluations += m;

        // ∂SmoothMax/∂µ_j = softmax weight of µ_j at the current
        // temperature (see simplex.h: F = vmax + log Σ exp(t(µ−vmax))/t).
        const std::vector<double>& mu = eval.mu();
        double vmax = mu[0];
        for (double v : mu) vmax = std::max(vmax, v);
        double wsum = 0.0;
        for (int j = 0; j < m; ++j) {
          const size_t uj = static_cast<size_t>(j);
          smw[uj] = std::exp(temp * (mu[uj] - vmax));
          wsum += smw[uj];
        }
        for (int j = 0; j < m; ++j) smw[static_cast<size_t>(j)] /= wsum;
        // Capacity penalty max(0, over)² with over = (bytes−cap)/cap:
        // slope in bytes is 2·over/cap on over-full targets, 0 elsewhere
        // (0 is the valid subgradient at the kink).
        for (int j = 0; j < m; ++j) {
          const size_t uj = static_cast<size_t>(j);
          const double cap = static_cast<double>(
              problem.target_capacities[static_cast<size_t>(j)]);
          const double over = (eval.bytes(j) - cap) / cap;
          dcap[uj] = over > 0.0 ? 2.0 * over / cap : 0.0;
        }
        for (int i = 0; i < n; ++i) {
          double* grow = &grad[static_cast<size_t>(i) * static_cast<size_t>(m)];
          if (RowFrozen(problem, i)) {
            for (int j = 0; j < m; ++j) grow[j] = 0.0;
            continue;
          }
          const double si = static_cast<double>(
              problem.object_sizes[static_cast<size_t>(i)]);
          for (int j = 0; j < m; ++j) {
            const size_t uj = static_cast<size_t>(j);
            grow[j] = smw[uj] * dmu[uj * static_cast<size_t>(n) +
                                    static_cast<size_t>(i)] +
                      penalty * (dcap[uj] * si + eval.PartnerMass(i, j, x));
          }
        }
      } else {
      // Central finite differences over the (i, j) grid, one column per
      // task. The incremental contexts price each perturbation as a rank-1
      // update; without them a lane-local layout copy feeds the black-box
      // µ_j. Gradient entries land in disjoint slots, so the outcome is
      // independent of how columns are scheduled over lanes.
      const double h = options_.fd_step;
      std::fill(fd_scratch_fresh.begin(), fd_scratch_fresh.end(), 0);
      auto fd_column = [&](int rank, int64_t jj) {
        const int j = static_cast<int>(jj);
        const size_t uj = static_cast<size_t>(j);
        ColumnEvaluator* ctx = eval.context(j);
        Layout* scratch = nullptr;
        if (ctx == nullptr) {
          scratch = &fd_scratch[static_cast<size_t>(rank)];
          if (!fd_scratch_fresh[static_cast<size_t>(rank)]) {
            *scratch = x;  // one copy per lane per iteration
            fd_scratch_fresh[static_cast<size_t>(rank)] = 1;
          }
        }
        int64_t full = 0;
        int64_t inc = 0;
        const double bytes_j = eval.bytes(j);
        const double sep = eval.separation();
        for (int i = 0; i < n; ++i) {
          if (RowFrozen(problem, i)) {
            grad[static_cast<size_t>(i) * static_cast<size_t>(m) + uj] = 0.0;
            continue;
          }
          const double si = static_cast<double>(
              problem.object_sizes[static_cast<size_t>(i)]);
          const double v = x.At(i, j);
          const double lo = std::max(0.0, v - h);
          const double hi = std::min(1.0, v + h);
          if (hi - lo < 1e-12) {
            grad[static_cast<size_t>(i) * static_cast<size_t>(m) + uj] = 0.0;
            continue;
          }
          double mu_hi;
          double mu_lo;
          if (ctx != nullptr) {
            mu_hi = ctx->WithObject(i, hi);
            mu_lo = ctx->WithObject(i, lo);
            inc += 2;
          } else {
            scratch->Set(i, j, hi);
            mu_hi = problem.target_utilization(*scratch, j);
            scratch->Set(i, j, lo);
            mu_lo = problem.target_utilization(*scratch, j);
            scratch->Set(i, j, v);
            full += 2;
          }
          const double pm = eval.PartnerMass(i, j, x);
          const double f_hi = eval.ObjectiveWithColumn(
              j, mu_hi, bytes_j + (hi - v) * si, sep + (hi - v) * pm, temp,
              penalty);
          const double f_lo = eval.ObjectiveWithColumn(
              j, mu_lo, bytes_j + (lo - v) * si, sep + (lo - v) * pm, temp,
              penalty);
          grad[static_cast<size_t>(i) * static_cast<size_t>(m) + uj] =
              (f_hi - f_lo) / (hi - lo);
        }
        col_full[uj] = full;
        col_inc[uj] = inc;
      };
      if (pool != nullptr) {
        pool->ParallelFor(m, fd_column);
      } else {
        for (int j = 0; j < m; ++j) fd_column(0, j);
      }
      for (int j = 0; j < m; ++j) {
        result.objective_evaluations += col_full[static_cast<size_t>(j)];
        result.incremental_evaluations += col_inc[static_cast<size_t>(j)];
      }
      }
      result.profile.gradient.calls += 1;
      result.profile.gradient.ns += NowNanos() - grad_t0;
      // Serial reduction in index order: the gradient norm comes out
      // identical for every thread count.
      double grad_norm2 = 0.0;
      for (double g : grad) grad_norm2 += g * g;
      if (grad_norm2 < 1e-18) break;

      // Backtracking projected-gradient step.
      double f_best = f;
      bool accepted = false;
      double alpha = step;
      const int64_t ls_t0 = NowNanos();
      for (int bt = 0; bt < options_.max_backtracks; ++bt) {
        trial = x;
        for (int i = 0; i < n; ++i) {
          if (RowFrozen(problem, i)) continue;
          double* row = trial.Row(i);
          const double* grow =
              &grad[static_cast<size_t>(i) * static_cast<size_t>(m)];
          for (int j = 0; j < m; ++j) row[j] -= alpha * grow[j];
          ProjectRowConstrained(problem, i, row, &sub_scratch, &sort_scratch);
        }
        trial_eval.Refresh(trial);
        result.profile.line_search.calls += 1;
        const double f_trial = trial_eval.Objective(temp, penalty);
        if (f_trial < f - options_.armijo_c * alpha * grad_norm2) {
          f_best = f_trial;
          accepted = true;
          break;
        }
        alpha *= options_.backtrack;
      }
      result.profile.line_search.ns += NowNanos() - ls_t0;
      if (!accepted) break;  // no descent direction at this temperature

      const double improvement = (f - f_best) / std::max(1e-12, std::fabs(f));
      x = trial;
      {
        const int64_t rf_t0 = NowNanos();
        if (engine == EvalEngine::kAnalytic) {
          // trial_eval just priced the accepted layout with the same
          // stateless batched kernels — adopt its caches instead of
          // paying the refresh twice.
          eval.AdoptState(trial_eval);
        } else {
          eval.Refresh(x);
        }
        result.profile.refresh.calls += 1;
        result.profile.refresh.ns += NowNanos() - rf_t0;
      }
      f = eval.Objective(temp, penalty);
      if (options_.record_trace) {
        result.trace.push_back(
            {result.iterations, NowNanos() - solve_t0, eval.TrueMax()});
      }
      step = std::min(options_.initial_step, alpha * 2.0);
      if (improvement < options_.tolerance) {
        if (++stall >= options_.patience) break;
      } else {
        stall = 0;
      }
    }
    temp *= options_.smoothmax_growth;
    penalty *= options_.penalty_growth;
  }

  // Penalty methods can leave a small capacity violation; repair greedily.
  if (!x.SatisfiesCapacity(problem.object_sizes, problem.target_capacities)) {
    RepairCapacity(problem, &x);
    eval.Refresh(x);
  }

  result.feasible =
      x.IsValid(problem.object_sizes, problem.target_capacities, 1e-6) &&
      problem.constraints.SatisfiedBy(x, /*tol=*/1e-3);
  result.max_utilization = eval.TrueMax();
  result.interp_queries =
      eval.TotalInterpQueries() + trial_eval.TotalInterpQueries();
  return result;
}

}  // namespace ldb
