#ifndef LAYOUTDB_SOLVER_LAYOUT_NLP_H_
#define LAYOUTDB_SOLVER_LAYOUT_NLP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "model/constraints.h"
#include "model/layout.h"

namespace ldb {

/// The layout problem as seen by the NLP solver (paper Section 4):
/// minimize max_j µ_j(L) over valid layouts L. The utilization function is
/// a black box — exactly how the paper plugs its non-AMPL target models
/// into MINOS as external functions.
struct LayoutNlpProblem {
  int num_objects = 0;
  int num_targets = 0;
  std::vector<int64_t> object_sizes;      ///< s_i, bytes
  std::vector<int64_t> target_capacities; ///< c_j, bytes

  /// µ_j under layout L. Must be defined for any L with entries in [0,1]
  /// (rows need not sum exactly to 1 during finite differencing).
  std::function<double(const Layout& layout, int j)> target_utilization;

  /// Administrative constraints (paper Section 4): allowed-target
  /// restrictions enter as a reduced feasible simplex per row; separation
  /// constraints enter as annealed quadratic penalties.
  PlacementConstraints constraints;
};

/// Tuning knobs of the projected-gradient layout solver.
struct SolverOptions {
  int max_iterations_per_round = 60;  ///< gradient steps per annealing round
  int annealing_rounds = 6;           ///< smooth-max / penalty schedule length
  double fd_step = 1e-4;              ///< central finite-difference step
  double initial_step = 0.25;        ///< first trial step length
  double armijo_c = 1e-4;            ///< sufficient-decrease coefficient
  double backtrack = 0.5;            ///< step shrink factor
  int max_backtracks = 25;
  double tolerance = 1e-6;  ///< relative improvement deemed converged
  int patience = 6;         ///< converged iterations before stopping a round
  double smoothmax_t0 = 30.0;      ///< initial log-sum-exp temperature
  double smoothmax_growth = 2.5;   ///< temperature multiplier per round
  double penalty0 = 10.0;          ///< initial capacity-violation weight
  double penalty_growth = 4.0;     ///< penalty multiplier per round
};

/// Outcome of one solver run.
struct SolverResult {
  Layout layout;            ///< optimized (generally non-regular) layout
  double max_utilization;   ///< true max_j µ_j of `layout`
  int iterations = 0;       ///< gradient steps taken
  int objective_evaluations = 0;  ///< µ_j evaluations (column recomputes)
  bool feasible = false;    ///< capacity constraints satisfied

  SolverResult() : layout(1, 1), max_utilization(0) {}
};

}  // namespace ldb

#endif  // LAYOUTDB_SOLVER_LAYOUT_NLP_H_
