#ifndef LAYOUTDB_SOLVER_LAYOUT_NLP_H_
#define LAYOUTDB_SOLVER_LAYOUT_NLP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/column_eval.h"
#include "model/constraints.h"
#include "model/layout.h"

namespace ldb {

/// The layout problem as seen by the NLP solver (paper Section 4):
/// minimize max_j µ_j(L) over valid layouts L. The utilization function is
/// a black box — exactly how the paper plugs its non-AMPL target models
/// into MINOS as external functions.
struct LayoutNlpProblem {
  int num_objects = 0;
  int num_targets = 0;
  std::vector<int64_t> object_sizes;      ///< s_i, bytes
  std::vector<int64_t> target_capacities; ///< c_j, bytes

  /// µ_j under layout L. Must be defined for any L with entries in [0,1]
  /// (rows need not sum exactly to 1 during finite differencing), and must
  /// be safe to call concurrently from multiple threads when the solver
  /// runs with num_threads > 1 (pure functions of their arguments are).
  std::function<double(const Layout& layout, int j)> target_utilization;

  /// Optional fast path: a factory for incremental per-column evaluators
  /// (see model/column_eval.h). When set, the solver prices its
  /// finite-difference perturbations through rank-1 cache updates instead
  /// of full µ_j recomputations — the difference between O(N²) and O(N)
  /// per perturbed coordinate. When unset, `target_utilization` is used
  /// for everything. Evaluators returned for distinct columns must be
  /// independently usable from different threads.
  std::function<std::unique_ptr<ColumnEvaluator>(int j)> make_column_eval;

  /// Administrative constraints (paper Section 4): allowed-target
  /// restrictions enter as a reduced feasible simplex per row; separation
  /// constraints enter as annealed quadratic penalties.
  PlacementConstraints constraints;

  /// Warm-start freezing for incremental re-solves (failure-aware
  /// re-layout): rows marked non-zero are taken verbatim from the initial
  /// layout and never perturbed — no seed projection, zero gradient, no
  /// update, and no capacity-repair donation. Empty = nothing frozen; size
  /// must equal num_objects when set.
  std::vector<char> frozen_rows;

  /// Analytic utilization Jacobian: fills
  /// grad_out[i·num_targets + j] = ∂µ_j/∂L_ij (row-major N×M) via the
  /// column evaluators' fused batched passes and returns true. Returns
  /// false — leaving grad_out untouched — when the problem carries no
  /// analytic-gradient support (no make_column_eval, or evaluators that do
  /// not implement it); callers then fall back to finite differences.
  /// Convenience entry point for tests and tools; the solver holds
  /// persistent evaluators instead of re-creating them per call.
  bool Gradient(const Layout& layout, double* grad_out) const;
};

/// How the projected-gradient solver prices ∇(objective).
enum class GradientMode {
  /// Closed-form gradient through the interpolated cost tables, the
  /// per-column statistics, and the SmoothMax/penalty composition — one
  /// fused value+gradient pass per column per step. Falls back to kFd
  /// when the problem provides no analytic support.
  kAnalytic,
  /// Central finite differences (2·N·M objective perturbations per step).
  /// Retained as the differential-testing baseline.
  kFd,
};

/// Tuning knobs of the projected-gradient layout solver.
struct SolverOptions {
  int max_iterations_per_round = 60;  ///< gradient steps per annealing round
  int annealing_rounds = 6;           ///< smooth-max / penalty schedule length
  double fd_step = 1e-4;              ///< central finite-difference step
  double initial_step = 0.25;        ///< first trial step length
  double armijo_c = 1e-4;            ///< sufficient-decrease coefficient
  double backtrack = 0.5;            ///< step shrink factor
  int max_backtracks = 25;
  double tolerance = 1e-6;  ///< relative improvement deemed converged
  int patience = 6;         ///< converged iterations before stopping a round
  double smoothmax_t0 = 30.0;      ///< initial log-sum-exp temperature
  double smoothmax_growth = 2.5;   ///< temperature multiplier per round
  double penalty0 = 10.0;          ///< initial capacity-violation weight
  double penalty_growth = 4.0;     ///< penalty multiplier per round

  /// Worker threads for the evaluation engine: 1 = fully serial (default),
  /// 0 = one per hardware core, n > 1 = exactly n. Results are
  /// bit-identical across thread counts — the finite-difference grid and
  /// multi-start seeds are partitioned into index-addressed slots and all
  /// reductions run serially in index order.
  int num_threads = 1;

  /// Use the problem's incremental column evaluators (when provided) for
  /// finite-difference pricing. Off switches the solver back to full µ_j
  /// recomputations per perturbation — the pre-cache engine, kept as the
  /// benchmark baseline. Only consulted in kFd gradient mode (or when
  /// analytic mode falls back to finite differences).
  bool use_incremental_cache = true;

  /// Gradient engine (see GradientMode). Analytic by default; kFd pins
  /// the finite-difference path for differential testing and benchmarks.
  GradientMode gradient_mode = GradientMode::kAnalytic;

  /// Record a per-accepted-step convergence trace (iteration, elapsed ns,
  /// true max µ) into SolverResult::trace. The trace is measurement only
  /// — the ns column varies run to run, the quality column is
  /// deterministic. Off by default; the benches turn it on to report
  /// time-to-matched-quality across engines.
  bool record_trace = false;
};

/// One accepted solver step in the convergence trace.
struct SolverTracePoint {
  int iteration = 0;     ///< cumulative gradient steps when recorded
  int64_t ns = 0;        ///< elapsed wall time since Solve() entry
  double true_max = 0.0; ///< true max_j µ_j at the accepted iterate
};

/// Wall-clock and call counts of one solver phase (leanstore-style
/// profiling table row; timings are measurement, not part of the
/// deterministic result).
struct SolverPhaseStats {
  int64_t calls = 0;
  int64_t ns = 0;

  void Accumulate(const SolverPhaseStats& o) {
    calls += o.calls;
    ns += o.ns;
  }
};

/// Per-phase effort breakdown of a solve, surfaced through the benches'
/// --json output so speedups land with numbers attached.
struct SolverProfile {
  SolverPhaseStats gradient;     ///< gradient sweeps (analytic or FD)
  SolverPhaseStats line_search;  ///< backtracking trial evaluations
  SolverPhaseStats refresh;      ///< accepted-state cache rebuilds

  void Accumulate(const SolverProfile& o) {
    gradient.Accumulate(o.gradient);
    line_search.Accumulate(o.line_search);
    refresh.Accumulate(o.refresh);
  }
};

/// Outcome of one solver run.
struct SolverResult {
  Layout layout;            ///< optimized (generally non-regular) layout
  double max_utilization;   ///< true max_j µ_j of `layout`
  int iterations = 0;       ///< gradient steps taken
  /// Full µ_j column evaluations (O(N²) each). 64-bit: at Figure 19
  /// scales 2·N·M·iterations overflows 32 bits.
  int64_t objective_evaluations = 0;
  /// Rank-1 incremental µ_j evaluations (O(N) each) served by the column
  /// cache instead of a full recompute.
  int64_t incremental_evaluations = 0;
  /// Fused analytic column-gradient passes (one per column per step in
  /// analytic mode; 0 under finite differences).
  int64_t gradient_evaluations = 0;
  /// Interpolator lookups issued by the batched analytic kernels (each
  /// visits the 2^dims corners of one grid cell).
  int64_t interp_queries = 0;
  /// Per-phase counters and timings of this solve.
  SolverProfile profile;
  /// Convergence trace of accepted steps (only when
  /// SolverOptions::record_trace; under multi-start, the winning seed's).
  std::vector<SolverTracePoint> trace;
  bool feasible = false;    ///< capacity constraints satisfied

  SolverResult() : layout(1, 1), max_utilization(0) {}
};

}  // namespace ldb

#endif  // LAYOUTDB_SOLVER_LAYOUT_NLP_H_
