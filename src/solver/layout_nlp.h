#ifndef LAYOUTDB_SOLVER_LAYOUT_NLP_H_
#define LAYOUTDB_SOLVER_LAYOUT_NLP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/column_eval.h"
#include "model/constraints.h"
#include "model/layout.h"

namespace ldb {

/// The layout problem as seen by the NLP solver (paper Section 4):
/// minimize max_j µ_j(L) over valid layouts L. The utilization function is
/// a black box — exactly how the paper plugs its non-AMPL target models
/// into MINOS as external functions.
struct LayoutNlpProblem {
  int num_objects = 0;
  int num_targets = 0;
  std::vector<int64_t> object_sizes;      ///< s_i, bytes
  std::vector<int64_t> target_capacities; ///< c_j, bytes

  /// µ_j under layout L. Must be defined for any L with entries in [0,1]
  /// (rows need not sum exactly to 1 during finite differencing), and must
  /// be safe to call concurrently from multiple threads when the solver
  /// runs with num_threads > 1 (pure functions of their arguments are).
  std::function<double(const Layout& layout, int j)> target_utilization;

  /// Optional fast path: a factory for incremental per-column evaluators
  /// (see model/column_eval.h). When set, the solver prices its
  /// finite-difference perturbations through rank-1 cache updates instead
  /// of full µ_j recomputations — the difference between O(N²) and O(N)
  /// per perturbed coordinate. When unset, `target_utilization` is used
  /// for everything. Evaluators returned for distinct columns must be
  /// independently usable from different threads.
  std::function<std::unique_ptr<ColumnEvaluator>(int j)> make_column_eval;

  /// Administrative constraints (paper Section 4): allowed-target
  /// restrictions enter as a reduced feasible simplex per row; separation
  /// constraints enter as annealed quadratic penalties.
  PlacementConstraints constraints;

  /// Warm-start freezing for incremental re-solves (failure-aware
  /// re-layout): rows marked non-zero are taken verbatim from the initial
  /// layout and never perturbed — no seed projection, zero gradient, no
  /// update, and no capacity-repair donation. Empty = nothing frozen; size
  /// must equal num_objects when set.
  std::vector<char> frozen_rows;
};

/// Tuning knobs of the projected-gradient layout solver.
struct SolverOptions {
  int max_iterations_per_round = 60;  ///< gradient steps per annealing round
  int annealing_rounds = 6;           ///< smooth-max / penalty schedule length
  double fd_step = 1e-4;              ///< central finite-difference step
  double initial_step = 0.25;        ///< first trial step length
  double armijo_c = 1e-4;            ///< sufficient-decrease coefficient
  double backtrack = 0.5;            ///< step shrink factor
  int max_backtracks = 25;
  double tolerance = 1e-6;  ///< relative improvement deemed converged
  int patience = 6;         ///< converged iterations before stopping a round
  double smoothmax_t0 = 30.0;      ///< initial log-sum-exp temperature
  double smoothmax_growth = 2.5;   ///< temperature multiplier per round
  double penalty0 = 10.0;          ///< initial capacity-violation weight
  double penalty_growth = 4.0;     ///< penalty multiplier per round

  /// Worker threads for the evaluation engine: 1 = fully serial (default),
  /// 0 = one per hardware core, n > 1 = exactly n. Results are
  /// bit-identical across thread counts — the finite-difference grid and
  /// multi-start seeds are partitioned into index-addressed slots and all
  /// reductions run serially in index order.
  int num_threads = 1;

  /// Use the problem's incremental column evaluators (when provided) for
  /// finite-difference pricing. Off switches the solver back to full µ_j
  /// recomputations per perturbation — the pre-cache engine, kept as the
  /// benchmark baseline.
  bool use_incremental_cache = true;
};

/// Outcome of one solver run.
struct SolverResult {
  Layout layout;            ///< optimized (generally non-regular) layout
  double max_utilization;   ///< true max_j µ_j of `layout`
  int iterations = 0;       ///< gradient steps taken
  /// Full µ_j column evaluations (O(N²) each). 64-bit: at Figure 19
  /// scales 2·N·M·iterations overflows 32 bits.
  int64_t objective_evaluations = 0;
  /// Rank-1 incremental µ_j evaluations (O(N) each) served by the column
  /// cache instead of a full recompute.
  int64_t incremental_evaluations = 0;
  bool feasible = false;    ///< capacity constraints satisfied

  SolverResult() : layout(1, 1), max_utilization(0) {}
};

}  // namespace ldb

#endif  // LAYOUTDB_SOLVER_LAYOUT_NLP_H_
