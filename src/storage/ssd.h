#ifndef LAYOUTDB_STORAGE_SSD_H_
#define LAYOUTDB_STORAGE_SSD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/device.h"
#include "util/units.h"

namespace ldb {

/// Parameters of a flash SSD model (2008-era SATA SSD, as in the paper).
struct SsdParams {
  std::string model_name = "ssd";
  int64_t capacity_bytes = 32 * kGiB;
  double read_latency_s = 1.0e-4;   ///< per-request flash read latency
  double write_latency_s = 2.5e-4;  ///< per-request program latency
  double transfer_mbps = 220.0;     ///< interface/media transfer rate, MiB/s
};

/// Flash SSD: no mechanical positioning, so random and sequential requests
/// cost the same and interference between streams carries no positioning
/// penalty. This is the heterogeneity the advisor exploits in the paper's
/// SSD experiments (Fig. 18).
class SsdModel final : public BlockDevice {
 public:
  explicit SsdModel(SsdParams params);

  double ServiceTime(const DeviceRequest& req) override;
  double PositioningEstimate(const DeviceRequest& req) const override;
  int64_t capacity_bytes() const override { return params_.capacity_bytes; }
  void Reset() override {}
  std::unique_ptr<BlockDevice> Clone() const override;
  const std::string& model_name() const override {
    return params_.model_name;
  }
  std::string ParamsText() const override;

  const SsdParams& params() const { return params_; }

 private:
  SsdParams params_;
  double bytes_per_second_;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_SSD_H_
