#include "storage/target.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ldb {

const char* RaidLevelName(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0:
      return "raid0";
    case RaidLevel::kRaid1:
      return "raid1";
    case RaidLevel::kRaid5:
      return "raid5";
  }
  return "unknown";
}

StorageTarget::StorageTarget(std::string name,
                             std::vector<std::unique_ptr<BlockDevice>> members,
                             int64_t stripe_bytes, EventQueue* queue,
                             double scheduler_max_wait_s,
                             RaidLevel raid_level)
    : name_(std::move(name)),
      members_(std::move(members)),
      stripe_bytes_(stripe_bytes),
      queue_(queue),
      scheduler_max_wait_s_(scheduler_max_wait_s),
      raid_level_(raid_level) {
  LDB_CHECK_GT(scheduler_max_wait_s_, 0.0);
  LDB_CHECK(!members_.empty());
  LDB_CHECK(queue_ != nullptr);
  LDB_CHECK_GT(stripe_bytes_, 0);
  int64_t member_capacity_sum = 0;
  for (const auto& m : members_) {
    LDB_CHECK(m != nullptr);
    LDB_CHECK(m->model_name() == members_.front()->model_name());
    member_capacity_sum += m->capacity_bytes();
  }
  const int64_t k = static_cast<int64_t>(members_.size());
  switch (raid_level_) {
    case RaidLevel::kRaid0:
      capacity_bytes_ = member_capacity_sum;
      break;
    case RaidLevel::kRaid1:
      LDB_CHECK_MSG(k >= 2, "RAID1 needs at least two members");
      capacity_bytes_ = members_.front()->capacity_bytes();
      break;
    case RaidLevel::kRaid5:
      LDB_CHECK_MSG(k >= 3, "RAID5 needs at least three members");
      capacity_bytes_ = member_capacity_sum / k * (k - 1);
      break;
  }
  member_queues_.resize(members_.size());
  member_busy_.assign(members_.size(), false);
}

int64_t StorageTarget::AllocateSlot(Completion done) {
  int64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    inflight_[slot] = Inflight{};
  } else {
    slot = static_cast<int64_t>(inflight_.size());
    inflight_.emplace_back();
  }
  inflight_[slot].done = std::move(done);
  return slot;
}

void StorageTarget::EnqueueSub(size_t m, const DeviceRequest& dev_req,
                               int64_t slot, int* subs) {
  member_queues_[m].push_back(SubRequest{dev_req, slot, queue_->Now()});
  ++*subs;
}

int StorageTarget::SubmitRaid0(const TargetRequest& req, int64_t slot) {
  const int64_t k = static_cast<int64_t>(members_.size());
  int64_t off = req.offset;
  int64_t remaining = req.size;
  int subs = 0;
  // Coalesce adjacent same-member chunks (a request larger than stripe*k
  // wraps back onto the same member).
  struct PerMemberAcc {
    bool active = false;
    int64_t offset = 0;
    int64_t size = 0;
  };
  std::vector<PerMemberAcc> acc(members_.size());
  auto flush = [&](size_t m) {
    if (!acc[m].active) return;
    EnqueueSub(m, DeviceRequest{acc[m].offset, acc[m].size, req.is_write},
               slot, &subs);
    acc[m] = PerMemberAcc{};
  };
  while (remaining > 0) {
    const int64_t stripe_index = off / stripe_bytes_;
    const int64_t within = off % stripe_bytes_;
    const int64_t chunk = std::min(remaining, stripe_bytes_ - within);
    const size_t member = static_cast<size_t>(stripe_index % k);
    const int64_t member_off = (stripe_index / k) * stripe_bytes_ + within;
    if (acc[member].active &&
        acc[member].offset + acc[member].size == member_off) {
      acc[member].size += chunk;
    } else {
      flush(member);
      acc[member].active = true;
      acc[member].offset = member_off;
      acc[member].size = chunk;
    }
    off += chunk;
    remaining -= chunk;
  }
  for (size_t m = 0; m < members_.size(); ++m) flush(m);
  return subs;
}

int StorageTarget::SubmitRaid1(const TargetRequest& req, int64_t slot) {
  int subs = 0;
  if (req.is_write) {
    // Mirrored write: every member writes the same extent.
    for (size_t m = 0; m < members_.size(); ++m) {
      EnqueueSub(m, DeviceRequest{req.offset, req.size, true}, slot, &subs);
    }
  } else {
    // Read from one member, rotating to spread load.
    const size_t m = next_read_member_++ % members_.size();
    EnqueueSub(m, DeviceRequest{req.offset, req.size, false}, slot, &subs);
  }
  return subs;
}

int StorageTarget::SubmitRaid5(const TargetRequest& req, int64_t slot) {
  // Left-symmetric RAID5: stripe row r keeps its parity chunk on member
  // (k-1 - r mod k); data chunks occupy the remaining k-1 members.
  const int64_t k = static_cast<int64_t>(members_.size());
  const int64_t data_cols = k - 1;
  int64_t off = req.offset;
  int64_t remaining = req.size;
  int subs = 0;
  int64_t last_parity_row = -1;
  while (remaining > 0) {
    const int64_t stripe_index = off / stripe_bytes_;
    const int64_t within = off % stripe_bytes_;
    const int64_t chunk = std::min(remaining, stripe_bytes_ - within);
    const int64_t row = stripe_index / data_cols;
    const int64_t col = stripe_index % data_cols;
    const int64_t parity_member = (k - 1) - (row % k);
    const int64_t data_member = col < parity_member ? col : col + 1;
    const int64_t member_off = row * stripe_bytes_ + within;
    EnqueueSub(static_cast<size_t>(data_member),
               DeviceRequest{member_off, chunk, req.is_write}, slot, &subs);
    if (req.is_write && row != last_parity_row) {
      // Parity read-modify-write for the touched row (one RMW per row:
      // adjacent chunks in the row share the parity update).
      EnqueueSub(static_cast<size_t>(parity_member),
                 DeviceRequest{member_off, chunk, false}, slot, &subs);
      EnqueueSub(static_cast<size_t>(parity_member),
                 DeviceRequest{member_off, chunk, true}, slot, &subs);
      last_parity_row = row;
    }
    off += chunk;
    remaining -= chunk;
  }
  return subs;
}

void StorageTarget::Submit(const TargetRequest& req, Completion done) {
  LDB_CHECK_GE(req.offset, 0);
  LDB_CHECK_GT(req.size, 0);
  LDB_CHECK_MSG(req.offset + req.size <= capacity_bytes_,
                "request beyond target %s capacity", name_.c_str());
  const int64_t slot = AllocateSlot(std::move(done));
  int subs = 0;
  switch (raid_level_) {
    case RaidLevel::kRaid0:
      subs = SubmitRaid0(req, slot);
      break;
    case RaidLevel::kRaid1:
      subs = SubmitRaid1(req, slot);
      break;
    case RaidLevel::kRaid5:
      subs = SubmitRaid5(req, slot);
      break;
  }
  LDB_CHECK_GT(subs, 0);
  inflight_[slot].pending_subs = subs;
  for (size_t m = 0; m < members_.size(); ++m) MaybeDispatch(m);
}

void StorageTarget::MaybeDispatch(size_t m) {
  if (member_busy_[m] || member_queues_[m].empty()) return;

  // Shortest-positioning-time-first among queued sub-requests (SCAN-like
  // behaviour: deeper queues mean cheaper average positioning), with a
  // deadline-style starvation bound: once the oldest request (the queue
  // front) has waited too long, it goes next unconditionally.
  auto& q = member_queues_[m];
  size_t best = 0;
  if (queue_->Now() - q.front().enqueue_time < scheduler_max_wait_s_) {
    double best_cost = members_[m]->PositioningEstimate(q[0].dev_req);
    for (size_t i = 1; i < q.size(); ++i) {
      const double c = members_[m]->PositioningEstimate(q[i].dev_req);
      if (c < best_cost) {
        best_cost = c;
        best = i;
      }
    }
  }
  SubRequest sub = q[best];
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(best));

  member_busy_[m] = true;
  const double service = members_[m]->ServiceTime(sub.dev_req);
  busy_time_ += service;
  const int64_t parent = sub.parent;
  queue_->ScheduleAfter(service, [this, m, parent]() {
    member_busy_[m] = false;
    Inflight& fl = inflight_[parent];
    LDB_CHECK_GT(fl.pending_subs, 0);
    if (--fl.pending_subs == 0) {
      ++requests_completed_;
      Completion done = std::move(fl.done);
      fl.done = nullptr;
      free_slots_.push_back(parent);
      if (done) done(queue_->Now());
    }
    MaybeDispatch(m);
  });
}

void StorageTarget::Reset() {
  for (size_t m = 0; m < members_.size(); ++m) {
    LDB_CHECK_MSG(!member_busy_[m] && member_queues_[m].empty(),
                  "Reset() on a busy target");
    members_[m]->Reset();
  }
  inflight_.clear();
  free_slots_.clear();
  next_read_member_ = 0;
  busy_time_ = 0.0;
  requests_completed_ = 0;
}

}  // namespace ldb
