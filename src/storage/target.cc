#include "storage/target.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

const char* RaidLevelName(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0:
      return "raid0";
    case RaidLevel::kRaid1:
      return "raid1";
    case RaidLevel::kRaid5:
      return "raid5";
  }
  return "unknown";
}

StorageTarget::StorageTarget(std::string name,
                             std::vector<std::unique_ptr<BlockDevice>> members,
                             int64_t stripe_bytes, EventQueue* queue,
                             double scheduler_max_wait_s,
                             RaidLevel raid_level)
    : name_(std::move(name)),
      members_(std::move(members)),
      stripe_bytes_(stripe_bytes),
      queue_(queue),
      scheduler_max_wait_s_(scheduler_max_wait_s),
      raid_level_(raid_level) {
  LDB_CHECK_GT(scheduler_max_wait_s_, 0.0);
  LDB_CHECK(!members_.empty());
  LDB_CHECK(queue_ != nullptr);
  LDB_CHECK_GT(stripe_bytes_, 0);
  int64_t member_capacity_sum = 0;
  for (const auto& m : members_) {
    LDB_CHECK(m != nullptr);
    LDB_CHECK(m->model_name() == members_.front()->model_name());
    member_capacity_sum += m->capacity_bytes();
  }
  const int64_t k = static_cast<int64_t>(members_.size());
  switch (raid_level_) {
    case RaidLevel::kRaid0:
      capacity_bytes_ = member_capacity_sum;
      break;
    case RaidLevel::kRaid1:
      LDB_CHECK_MSG(k >= 2, "RAID1 needs at least two members");
      capacity_bytes_ = members_.front()->capacity_bytes();
      break;
    case RaidLevel::kRaid5:
      LDB_CHECK_MSG(k >= 3, "RAID5 needs at least three members");
      capacity_bytes_ = member_capacity_sum / k * (k - 1);
      break;
  }
  member_queues_.resize(members_.size());
  member_busy_.assign(members_.size(), false);
  member_health_.assign(members_.size(), MemberHealth::kHealthy);
  member_latency_scale_.assign(members_.size(), 1.0);
  member_error_prob_.assign(members_.size(), 0.0);
  rebuild_pos_.assign(members_.size(), 0);
  rebuild_chunk_.assign(members_.size(), 4 * kMiB);
}

int64_t StorageTarget::AllocateSlot(StatusCompletion done) {
  int64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    inflight_[slot] = Inflight{};
  } else {
    slot = static_cast<int64_t>(inflight_.size());
    inflight_.emplace_back();
  }
  inflight_[slot].done = std::move(done);
  return slot;
}

void StorageTarget::EnqueueSub(size_t m, const DeviceRequest& dev_req,
                               int64_t slot, int* subs) {
  member_queues_[m].push_back(SubRequest{dev_req, slot, queue_->Now(), 0});
  ++*subs;
}

int StorageTarget::ServingCount() const {
  int count = 0;
  for (size_t m = 0; m < members_.size(); ++m) {
    if (Serves(m)) ++count;
  }
  return count;
}

int StorageTarget::SubmitRaid0(const TargetRequest& req, int64_t slot) {
  const int64_t k = static_cast<int64_t>(members_.size());
  int64_t off = req.offset;
  int64_t remaining = req.size;
  int subs = 0;
  // Coalesce adjacent same-member chunks (a request larger than stripe*k
  // wraps back onto the same member).
  struct PerMemberAcc {
    bool active = false;
    int64_t offset = 0;
    int64_t size = 0;
  };
  std::vector<PerMemberAcc> acc(members_.size());
  auto flush = [&](size_t m) {
    if (!acc[m].active) return;
    EnqueueSub(m, DeviceRequest{acc[m].offset, acc[m].size, req.is_write},
               slot, &subs);
    acc[m] = PerMemberAcc{};
  };
  while (remaining > 0) {
    const int64_t stripe_index = off / stripe_bytes_;
    const int64_t within = off % stripe_bytes_;
    const int64_t chunk = std::min(remaining, stripe_bytes_ - within);
    const size_t member = static_cast<size_t>(stripe_index % k);
    const int64_t member_off = (stripe_index / k) * stripe_bytes_ + within;
    if (acc[member].active &&
        acc[member].offset + acc[member].size == member_off) {
      acc[member].size += chunk;
    } else {
      flush(member);
      acc[member].active = true;
      acc[member].offset = member_off;
      acc[member].size = chunk;
    }
    off += chunk;
    remaining -= chunk;
  }
  for (size_t m = 0; m < members_.size(); ++m) flush(m);
  return subs;
}

int StorageTarget::SubmitRaid1(const TargetRequest& req, int64_t slot) {
  int subs = 0;
  if (req.is_write) {
    // Mirrored write: every serving member writes the same extent. A dead
    // or rebuilding member is skipped; survivors carry the data.
    for (size_t m = 0; m < members_.size(); ++m) {
      if (!Serves(m)) continue;
      EnqueueSub(m, DeviceRequest{req.offset, req.size, true}, slot, &subs);
    }
  } else {
    // Read from one serving member, rotating to spread load.
    const int count = ServingCount();
    if (count < num_members()) ++stats_.degraded_reads;
    size_t pick = next_read_member_++ % static_cast<size_t>(count);
    for (size_t m = 0; m < members_.size(); ++m) {
      if (!Serves(m)) continue;
      if (pick == 0) {
        EnqueueSub(m, DeviceRequest{req.offset, req.size, false}, slot,
                   &subs);
        break;
      }
      --pick;
    }
  }
  return subs;
}

int StorageTarget::SubmitRaid5(const TargetRequest& req, int64_t slot) {
  // Left-symmetric RAID5: stripe row r keeps its parity chunk on member
  // (k-1 - r mod k); data chunks occupy the remaining k-1 members.
  const int64_t k = static_cast<int64_t>(members_.size());
  const int64_t data_cols = k - 1;
  int64_t off = req.offset;
  int64_t remaining = req.size;
  int subs = 0;
  int64_t last_parity_row = -1;
  while (remaining > 0) {
    const int64_t stripe_index = off / stripe_bytes_;
    const int64_t within = off % stripe_bytes_;
    const int64_t chunk = std::min(remaining, stripe_bytes_ - within);
    const int64_t row = stripe_index / data_cols;
    const int64_t col = stripe_index % data_cols;
    const int64_t parity_member = (k - 1) - (row % k);
    const int64_t data_member = col < parity_member ? col : col + 1;
    const int64_t member_off = row * stripe_bytes_ + within;
    const size_t dm = static_cast<size_t>(data_member);
    const size_t pm = static_cast<size_t>(parity_member);
    if (!req.is_write) {
      if (Serves(dm)) {
        EnqueueSub(dm, DeviceRequest{member_off, chunk, false}, slot, &subs);
      } else {
        // Degraded read: reconstruct the chunk by reading the row from
        // every surviving member (data and parity alike).
        ++stats_.degraded_reads;
        for (size_t s = 0; s < members_.size(); ++s) {
          if (!Serves(s)) continue;
          EnqueueSub(s, DeviceRequest{member_off, chunk, false}, slot, &subs);
        }
      }
    } else if (Serves(dm)) {
      EnqueueSub(dm, DeviceRequest{member_off, chunk, true}, slot, &subs);
      if (Serves(pm) && row != last_parity_row) {
        // Parity read-modify-write for the touched row (one RMW per row:
        // adjacent chunks in the row share the parity update). With the
        // parity member down the data write stands alone.
        EnqueueSub(pm, DeviceRequest{member_off, chunk, false}, slot, &subs);
        EnqueueSub(pm, DeviceRequest{member_off, chunk, true}, slot, &subs);
        last_parity_row = row;
      }
    } else {
      // Degraded write to a dead data member: the new data lives only in
      // parity — read the row's surviving chunks, write the new parity.
      for (size_t s = 0; s < members_.size(); ++s) {
        if (!Serves(s) || s == pm) continue;
        EnqueueSub(s, DeviceRequest{member_off, chunk, false}, slot, &subs);
      }
      EnqueueSub(pm, DeviceRequest{member_off, chunk, true}, slot, &subs);
      last_parity_row = row;
    }
    off += chunk;
    remaining -= chunk;
  }
  return subs;
}

void StorageTarget::Submit(const TargetRequest& req, Completion done) {
  if (done) {
    SubmitWithStatus(req,
                     StatusCompletion([done = std::move(done)](
                         double when, const Status&) { done(when); }));
  } else {
    SubmitWithStatus(req, StatusCompletion());
  }
}

bool StorageTarget::serviceable() const {
  const int down = num_members() - ServingCount();
  switch (raid_level_) {
    case RaidLevel::kRaid0:
      return down == 0;  // striping has no redundancy
    case RaidLevel::kRaid1:
      return down < num_members();
    case RaidLevel::kRaid5:
      return down < 2;
  }
  return false;
}

void StorageTarget::SubmitWithStatus(const TargetRequest& req,
                                     StatusCompletion done) {
  LDB_CHECK_GE(req.offset, 0);
  LDB_CHECK_GT(req.size, 0);
  LDB_CHECK_MSG(req.offset + req.size <= capacity_bytes_,
                "request beyond target %s capacity", name_.c_str());
  const int64_t slot = AllocateSlot(std::move(done));
  ++inflight_requests_;
  if (!serviceable()) {
    FailRequest(slot, "no serviceable member path");
    return;
  }
  int subs = 0;
  switch (raid_level_) {
    case RaidLevel::kRaid0:
      subs = SubmitRaid0(req, slot);
      break;
    case RaidLevel::kRaid1:
      subs = SubmitRaid1(req, slot);
      break;
    case RaidLevel::kRaid5:
      subs = SubmitRaid5(req, slot);
      break;
  }
  LDB_CHECK_GT(subs, 0);
  inflight_[slot].pending_subs = subs;
  for (size_t m = 0; m < members_.size(); ++m) MaybeDispatch(m);
}

void StorageTarget::FailRequest(int64_t slot, const char* why) {
  inflight_[slot].status =
      Status::IoError(StrFormat("target %s: %s", name_.c_str(), why));
  inflight_[slot].pending_subs = 1;
  queue_->ScheduleAfter(0.0, [this, slot]() { FinishSub(slot); });
}

void StorageTarget::FinishSub(int64_t parent) {
  Inflight& fl = inflight_[parent];
  LDB_CHECK_GT(fl.pending_subs, 0);
  if (--fl.pending_subs == 0) {
    if (!fl.internal) {
      ++requests_completed_;
      LDB_CHECK_GT(inflight_requests_, 0u);
      --inflight_requests_;
      if (!fl.status.ok()) ++stats_.failed_requests;
    }
    StatusCompletion done = std::move(fl.done);
    Status status = std::move(fl.status);
    fl = Inflight{};
    free_slots_.push_back(parent);
    if (done) done(queue_->Now(), status);
  }
}

void StorageTarget::MaybeDispatch(size_t m) {
  if (member_busy_[m] || member_queues_[m].empty()) return;

  // Shortest-positioning-time-first among queued sub-requests (SCAN-like
  // behaviour: deeper queues mean cheaper average positioning), with a
  // deadline-style starvation bound: once the oldest request (the queue
  // front) has waited too long, it goes next unconditionally.
  auto& q = member_queues_[m];
  size_t best = 0;
  if (queue_->Now() - q.front().enqueue_time < scheduler_max_wait_s_) {
    double best_cost = members_[m]->PositioningEstimate(q[0].dev_req);
    for (size_t i = 1; i < q.size(); ++i) {
      const double c = members_[m]->PositioningEstimate(q[i].dev_req);
      if (c < best_cost) {
        best_cost = c;
        best = i;
      }
    }
  }
  SubRequest sub = q[best];
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(best));

  member_busy_[m] = true;
  const double service =
      members_[m]->ServiceTime(sub.dev_req) * member_latency_scale_[m];
  busy_time_ += service;
  queue_->ScheduleAfter(service, [this, m, sub]() {
    member_busy_[m] = false;
    const double p = member_error_prob_[m];
    if (p > 0.0 && fault_rng_.Bernoulli(p)) {
      // Transient error: the service time was consumed, the transfer
      // failed. Retry with linear backoff up to the bound, then surface
      // kIoError on the parent request.
      ++stats_.transient_errors;
      if (sub.attempts < max_retries_) {
        ++stats_.retries;
        SubRequest retry = sub;
        ++retry.attempts;
        const double backoff = retry_backoff_s_ * retry.attempts;
        queue_->ScheduleAfter(backoff, [this, m, retry]() {
          if (Serves(m) || member_health_[m] == MemberHealth::kRebuilding) {
            member_queues_[m].push_back(retry);
            MaybeDispatch(m);
          } else {
            ReRouteOrphan(m, retry);  // member died during the backoff
            // The re-route queues the sub on surviving members; kick them
            // (as FailMember does) or an idle receiver never services it.
            for (size_t j = 0; j < members_.size(); ++j) MaybeDispatch(j);
          }
        });
        MaybeDispatch(m);
        return;
      }
      Inflight& fl = inflight_[sub.parent];
      if (fl.status.ok()) {
        fl.status = Status::IoError(
            StrFormat("target %s member %d: %d retries exhausted",
                      name_.c_str(), static_cast<int>(m), max_retries_));
      }
    }
    FinishSub(sub.parent);
    MaybeDispatch(m);
  });
}

void StorageTarget::SetRetryPolicy(int max_retries, double backoff_s) {
  LDB_CHECK_GE(max_retries, 0);
  LDB_CHECK_GE(backoff_s, 0.0);
  max_retries_ = max_retries;
  retry_backoff_s_ = backoff_s;
}

void StorageTarget::FailMember(int m) {
  LDB_CHECK_GE(m, 0);
  LDB_CHECK_LT(m, num_members());
  const size_t um = static_cast<size_t>(m);
  if (member_health_[um] == MemberHealth::kDead) return;
  member_health_[um] = MemberHealth::kDead;
  ++stats_.faults_injected;
  UpdateDegradedClock();
  // Re-route or fail whatever was queued on the dead member. The
  // sub-request it was actively servicing (if any) completes normally —
  // that transfer had already left the queue when the fault hit.
  std::deque<SubRequest> orphans;
  orphans.swap(member_queues_[um]);
  for (const SubRequest& sub : orphans) ReRouteOrphan(um, sub);
  for (size_t j = 0; j < members_.size(); ++j) MaybeDispatch(j);
}

void StorageTarget::ReRouteOrphan(size_t dead_member, const SubRequest& sub) {
  auto fail_parent = [&]() {
    Inflight& fl = inflight_[sub.parent];
    if (fl.status.ok()) {
      fl.status = Status::IoError(
          StrFormat("target %s member %d failed", name_.c_str(),
                    static_cast<int>(dead_member)));
    }
    FinishSub(sub.parent);
  };
  switch (raid_level_) {
    case RaidLevel::kRaid0:
      // No redundancy: the data on the dead member is gone.
      fail_parent();
      break;
    case RaidLevel::kRaid1: {
      if (sub.dev_req.is_write) {
        // Survivors got (or will get) their mirrored copies.
        FinishSub(sub.parent);
        break;
      }
      const int count = ServingCount();
      if (count == 0) {
        fail_parent();
        break;
      }
      // Re-issue the read on a surviving mirror.
      size_t pick = next_read_member_++ % static_cast<size_t>(count);
      for (size_t s = 0; s < members_.size(); ++s) {
        if (!Serves(s)) continue;
        if (pick == 0) {
          member_queues_[s].push_back(sub);
          break;
        }
        --pick;
      }
      break;
    }
    case RaidLevel::kRaid5: {
      if (sub.dev_req.is_write) {
        // The row's parity chunk (queued separately, on a live member)
        // absorbs the update.
        FinishSub(sub.parent);
        break;
      }
      if (ServingCount() < num_members() - 1) {
        fail_parent();  // second failure: stripe unrecoverable
        break;
      }
      // Reconstruct: read the row from every surviving member.
      ++stats_.degraded_reads;
      int added = 0;
      for (size_t s = 0; s < members_.size(); ++s) {
        if (!Serves(s)) continue;
        EnqueueSub(s,
                   DeviceRequest{sub.dev_req.offset, sub.dev_req.size, false},
                   sub.parent, &added);
      }
      inflight_[sub.parent].pending_subs += added - 1;
      break;
    }
  }
}

void StorageTarget::RecoverMember(int m) {
  LDB_CHECK_GE(m, 0);
  LDB_CHECK_LT(m, num_members());
  const size_t um = static_cast<size_t>(m);
  member_health_[um] = MemberHealth::kHealthy;
  member_latency_scale_[um] = 1.0;
  member_error_prob_[um] = 0.0;
  UpdateDegradedClock();
}

void StorageTarget::SetMemberLatencyScale(int m, double scale) {
  LDB_CHECK_GE(m, 0);
  LDB_CHECK_LT(m, num_members());
  LDB_CHECK_GT(scale, 0.0);
  const size_t um = static_cast<size_t>(m);
  if (scale != 1.0 && scale != member_latency_scale_[um]) {
    ++stats_.faults_injected;
  }
  member_latency_scale_[um] = scale;
  UpdateDegradedClock();
}

void StorageTarget::SetMemberErrorProbability(int m, double p) {
  LDB_CHECK_GE(m, 0);
  LDB_CHECK_LT(m, num_members());
  LDB_CHECK_GE(p, 0.0);
  LDB_CHECK_LE(p, 1.0);
  const size_t um = static_cast<size_t>(m);
  if (p > 0.0 && p != member_error_prob_[um]) ++stats_.faults_injected;
  member_error_prob_[um] = p;
  UpdateDegradedClock();
}

Status StorageTarget::StartRebuild(int m, int64_t chunk_bytes) {
  LDB_CHECK_GE(m, 0);
  LDB_CHECK_LT(m, num_members());
  LDB_CHECK_GT(chunk_bytes, 0);
  const size_t um = static_cast<size_t>(m);
  // These preconditions depend on event ordering (a rebuild is only valid
  // after the matching fail-stop), which a user-supplied fault plan can
  // get wrong — report the error rather than crashing.
  if (raid_level_ == RaidLevel::kRaid0) {
    return Status::FailedPrecondition(StrFormat(
        "target %s: RAID0 has no redundancy to rebuild from", name_.c_str()));
  }
  if (member_health_[um] != MemberHealth::kDead) {
    return Status::FailedPrecondition(StrFormat(
        "target %s: rebuild member %d is not dead", name_.c_str(), m));
  }
  if (raid_level_ == RaidLevel::kRaid5) {
    if (ServingCount() != num_members() - 1) {
      return Status::FailedPrecondition(
          StrFormat("target %s: RAID5 rebuild needs every other member "
                    "healthy",
                    name_.c_str()));
    }
  } else if (ServingCount() < 1) {
    return Status::FailedPrecondition(StrFormat(
        "target %s: RAID1 rebuild needs a survivor", name_.c_str()));
  }
  members_[um]->Reset();  // fresh hot spare standing in for the dead device
  member_health_[um] = MemberHealth::kRebuilding;
  rebuild_pos_[um] = 0;
  rebuild_chunk_[um] = chunk_bytes;
  UpdateDegradedClock();
  ContinueRebuild(m);
  return Status::Ok();
}

void StorageTarget::ContinueRebuild(int m) {
  const size_t um = static_cast<size_t>(m);
  if (member_health_[um] != MemberHealth::kRebuilding) {
    return;  // aborted: the member died again or was force-recovered
  }
  const int64_t cap = members_[um]->capacity_bytes();
  if (rebuild_pos_[um] >= cap) {
    member_health_[um] = MemberHealth::kHealthy;
    UpdateDegradedClock();
    return;
  }
  // The rebuild source can disappear between chunks (the last RAID1
  // mirror, or a second RAID5 member, fail-stopping mid-rebuild). With
  // nothing left to read from, park the member as dead again instead of
  // issuing a chunk (the RAID1 read pick below would divide by zero).
  const bool source_lost = raid_level_ == RaidLevel::kRaid5
                               ? ServingCount() < num_members() - 1
                               : ServingCount() == 0;
  if (source_lost) {
    member_health_[um] = MemberHealth::kDead;
    UpdateDegradedClock();
    return;
  }
  const int64_t pos = rebuild_pos_[um];
  const int64_t chunk = std::min(rebuild_chunk_[um], cap - pos);
  rebuild_pos_[um] += chunk;
  stats_.rebuild_bytes += chunk;
  // One chunk in flight at a time: read the survivors, write the spare,
  // continue when the chunk completes. Closed-loop pacing keeps rebuild
  // traffic from starving foreground I/O beyond what the member queues
  // already model.
  const int64_t slot = AllocateSlot([this, m](double, const Status& s) {
    const size_t mem = static_cast<size_t>(m);
    if (!s.ok() && member_health_[mem] == MemberHealth::kRebuilding) {
      // The chunk's source reads failed mid-flight (survivors died while
      // it was queued): the spare has a hole, the rebuild cannot finish.
      member_health_[mem] = MemberHealth::kDead;
      UpdateDegradedClock();
      return;
    }
    ContinueRebuild(m);
  });
  inflight_[slot].internal = true;
  int subs = 0;
  if (raid_level_ == RaidLevel::kRaid1) {
    const int count = ServingCount();
    size_t pick = next_read_member_++ % static_cast<size_t>(count);
    for (size_t s = 0; s < members_.size(); ++s) {
      if (!Serves(s)) continue;
      if (pick == 0) {
        EnqueueSub(s, DeviceRequest{pos, chunk, false}, slot, &subs);
        break;
      }
      --pick;
    }
  } else {
    for (size_t s = 0; s < members_.size(); ++s) {
      if (!Serves(s)) continue;
      EnqueueSub(s, DeviceRequest{pos, chunk, false}, slot, &subs);
    }
  }
  EnqueueSub(um, DeviceRequest{pos, chunk, true}, slot, &subs);
  inflight_[slot].pending_subs = subs;
  for (size_t j = 0; j < members_.size(); ++j) MaybeDispatch(j);
}

bool StorageTarget::degraded() const {
  for (size_t m = 0; m < members_.size(); ++m) {
    if (member_health_[m] != MemberHealth::kHealthy) return true;
    if (member_latency_scale_[m] != 1.0) return true;
    if (member_error_prob_[m] > 0.0) return true;
  }
  return false;
}

void StorageTarget::UpdateDegradedClock() {
  const bool unhealthy = degraded();
  const double now = queue_->Now();
  if (unhealthy && degraded_since_ < 0.0) {
    degraded_since_ = now;
  } else if (!unhealthy && degraded_since_ >= 0.0) {
    stats_.degraded_time += now - degraded_since_;
    degraded_since_ = -1.0;
  }
}

FaultStats StorageTarget::fault_stats() const {
  FaultStats out = stats_;
  if (degraded_since_ >= 0.0) {
    out.degraded_time += queue_->Now() - degraded_since_;
  }
  return out;
}

void StorageTarget::Reset() {
  for (size_t m = 0; m < members_.size(); ++m) {
    LDB_CHECK_MSG(!member_busy_[m] && member_queues_[m].empty(),
                  "Reset() on a busy target");
    members_[m]->Reset();
  }
  inflight_.clear();
  free_slots_.clear();
  next_read_member_ = 0;
  busy_time_ = 0.0;
  requests_completed_ = 0;
  inflight_requests_ = 0;
  member_health_.assign(members_.size(), MemberHealth::kHealthy);
  member_latency_scale_.assign(members_.size(), 1.0);
  member_error_prob_.assign(members_.size(), 0.0);
  rebuild_pos_.assign(members_.size(), 0);
  rebuild_chunk_.assign(members_.size(), 4 * kMiB);
  stats_ = FaultStats{};
  degraded_since_ = -1.0;
}

}  // namespace ldb
