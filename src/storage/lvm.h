#ifndef LAYOUTDB_STORAGE_LVM_H_
#define LAYOUTDB_STORAGE_LVM_H_

#include <cstdint>
#include <vector>

#include "storage/io_request.h"
#include "util/status.h"
#include "util/units.h"

namespace ldb {

/// A chunk of a logical request mapped onto one target.
struct TargetChunk {
  int target = 0;
  int64_t offset = 0;  ///< target-relative byte offset
  int64_t size = 0;
  /// Data-plane epoch of the manager that produced this chunk (see
  /// StripedVolumeManager::set_data_epoch). Inert for the simulator; a
  /// real BlockBackend shifts the file offset by epoch * stride so source
  /// and destination extents of a migration never overlap on media.
  int epoch = 0;
};

/// Striped logical-volume manager, the layout-implementation mechanism used
/// in the paper's experiments (Section 5.2.1): each database object is a
/// logical volume divided into fixed-size stripes distributed round-robin
/// over the object's assigned targets.
///
/// Only *regular* layouts (equal fraction on each used target, paper Def. 2)
/// are implementable this way; the advisor's regularization step exists
/// precisely to produce such layouts.
class StripedVolumeManager {
 public:
  /// Builds volumes for all objects and allocates contiguous per-target
  /// extents.
  ///
  /// \param object_sizes size in bytes of each object, indexed by ObjectId.
  /// \param placements for each object, the (non-empty, duplicate-free) list
  ///   of target indexes it is striped across.
  /// \param target_capacities capacity of each target in bytes.
  /// \param stripe_bytes LVM stripe size.
  /// \returns CapacityExceeded if any target's extents exceed its capacity.
  static Result<StripedVolumeManager> Create(
      std::vector<int64_t> object_sizes,
      std::vector<std::vector<int>> placements,
      const std::vector<int64_t>& target_capacities,
      int64_t stripe_bytes = kMiB);

  /// Maps a logical (object-relative) byte range to target chunks, in
  /// logical order. Requires 0 <= offset, offset + size <= object size.
  void Map(ObjectId object, int64_t offset, int64_t size,
           std::vector<TargetChunk>* out) const;

  int64_t stripe_bytes() const { return stripe_bytes_; }
  int num_objects() const { return static_cast<int>(object_sizes_.size()); }

  /// Size of object `i` in bytes.
  int64_t object_size(ObjectId i) const {
    return object_sizes_[static_cast<size_t>(i)];
  }

  /// Targets object `i` is striped across.
  const std::vector<int>& targets_of(ObjectId i) const {
    return placements_[static_cast<size_t>(i)];
  }

  /// Bytes of target `j` consumed by allocated extents.
  int64_t allocated_on(int j) const {
    return allocated_[static_cast<size_t>(j)];
  }

  /// Data-plane epoch stamped into every chunk this manager maps. Each
  /// manager allocates its extents from target offset 0, so two managers
  /// (a migration's source and destination) overlap in *simulated* offset
  /// space — harmless for the simulator, which carries no data, but fatal
  /// for a real backend. Real-I/O runs therefore place managers in
  /// alternating epochs; the backend offsets epoch-1 extents by a
  /// per-target stride (half of a double-provisioned file). Purely a
  /// data-plane annotation: simulated timing never reads it.
  void set_data_epoch(int epoch) { data_epoch_ = epoch; }
  int data_epoch() const { return data_epoch_; }

 private:
  StripedVolumeManager() = default;

  std::vector<int64_t> object_sizes_;
  std::vector<std::vector<int>> placements_;
  int64_t stripe_bytes_ = kMiB;
  /// extent_base_[i][k]: byte offset on placements_[i][k] of object i's
  /// extent on that target.
  std::vector<std::vector<int64_t>> extent_base_;
  std::vector<int64_t> allocated_;
  int data_epoch_ = 0;
};

/// Routes logical (object-relative) byte ranges to target chunks. The plain
/// implementation wraps one StripedVolumeManager; the migration executor
/// implements it too, routing each range to the old or new location (or
/// both, for mirrored writes) depending on per-chunk copy progress.
class VolumeRouter {
 public:
  virtual ~VolumeRouter() = default;

  virtual int num_objects() const = 0;
  virtual int64_t object_size(ObjectId i) const = 0;

  /// Appends the target chunks serving this access to `out` (without
  /// clearing it). Writes may fan out to more chunks than reads when a
  /// range is mirrored across two locations.
  virtual void Route(ObjectId object, int64_t offset, int64_t size,
                     bool is_write, std::vector<TargetChunk>* out) = 0;
};

/// VolumeRouter over a single static layout: every access maps through one
/// volume manager, reads and writes alike.
class PassthroughRouter final : public VolumeRouter {
 public:
  /// `volumes` must outlive the router.
  explicit PassthroughRouter(const StripedVolumeManager* volumes)
      : volumes_(volumes) {}

  int num_objects() const override { return volumes_->num_objects(); }
  int64_t object_size(ObjectId i) const override {
    return volumes_->object_size(i);
  }
  void Route(ObjectId object, int64_t offset, int64_t size, bool /*is_write*/,
             std::vector<TargetChunk>* out) override {
    volumes_->Map(object, offset, size, out);
  }

 private:
  const StripedVolumeManager* volumes_;
};

/// VolumeRouter indirection whose delegate can be swapped mid-run — the
/// seam the layout autopilot uses to splice a MigrationExecutor into (and
/// out of) the foreground I/O path without touching the workload runner.
/// The delegate must outlive every request routed through it.
class SwitchableRouter final : public VolumeRouter {
 public:
  explicit SwitchableRouter(VolumeRouter* delegate) : delegate_(delegate) {}

  VolumeRouter* delegate() const { return delegate_; }
  /// Swaps the delegate. The new delegate must describe the same objects
  /// (ids and sizes); in-flight requests already routed are unaffected.
  void set_delegate(VolumeRouter* delegate) { delegate_ = delegate; }

  int num_objects() const override { return delegate_->num_objects(); }
  int64_t object_size(ObjectId i) const override {
    return delegate_->object_size(i);
  }
  void Route(ObjectId object, int64_t offset, int64_t size, bool is_write,
             std::vector<TargetChunk>* out) override {
    delegate_->Route(object, offset, size, is_write, out);
  }

 private:
  VolumeRouter* delegate_;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_LVM_H_
