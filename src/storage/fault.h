#ifndef LAYOUTDB_STORAGE_FAULT_H_
#define LAYOUTDB_STORAGE_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/storage_system.h"
#include "util/status.h"

namespace ldb {

/// Kinds of injectable faults.
enum class FaultKind {
  kFailStop,   ///< member device dies and stops serving I/O
  kLimp,       ///< member serves I/O at `latency_scale` times normal latency
  kTransient,  ///< member fails each sub-request with `error_prob`
  kRebuild,    ///< start rebuilding a dead member onto a hot spare
  kRecover,    ///< member instantly returns to full health
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault event.
struct FaultSpec {
  double time = 0.0;  ///< seconds after FaultInjector::Arm()
  int target = 0;     ///< storage-system target index
  int member = 0;     ///< member device within the target
  FaultKind kind = FaultKind::kFailStop;
  double latency_scale = 2.0;  ///< kLimp: service-time multiplier (> 0)
  double error_prob = 0.1;     ///< kTransient: per-sub-request error rate
  double duration = 0.0;       ///< kLimp/kTransient: auto-clear after this
                               ///< many seconds; 0 keeps the fault sticky
  int64_t rebuild_chunk_bytes = 4 * 1024 * 1024;  ///< kRebuild granularity
};

/// A reproducible fault schedule: every fault is pinned to a simulation
/// time, and all random decisions (the transient-error coin flips) derive
/// from `seed` via per-target streams, so a plan replays bit-identically
/// regardless of host thread counts.
struct FaultPlan {
  uint64_t seed = 1;
  int max_retries = 3;           ///< transient-error retry bound per sub
  double retry_backoff_s = 0.002;  ///< base backoff; grows linearly per try
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
};

/// Parses a `--faults` command-line spec. Clauses are separated by ';',
/// each clause is comma-separated key=value pairs:
///
///   "t=5,target=1,kind=fail;t=9,target=1,kind=rebuild"
///   "seed=7,retries=2,backoff=0.001;t=1,target=0,member=2,kind=transient,
///    p=0.3,duration=4"
///
/// Keys: t (time, s), target, member, kind (fail|limp|transient|rebuild|
/// recover), scale (limp multiplier), p (transient error rate), duration
/// (s), chunk (rebuild bytes). Plan-level keys seed/retries/backoff may
/// appear in any clause; a clause with only plan-level keys adds no fault.
Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// Renders a plan back to the spec grammar (for logs and reports).
std::string FaultPlanToString(const FaultPlan& plan);

/// Schedules a FaultPlan onto a storage system's event queue.
///
/// Arm() seeds each target's fault RNG (MixSeed(plan.seed, target)),
/// installs the retry policy, and schedules one event per FaultSpec
/// relative to the current simulation time — call it immediately before
/// running the workload. The injector must outlive the simulation run, and
/// `system` must outlive the injector.
class FaultInjector {
 public:
  FaultInjector(StorageSystem* system, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validates the plan against the system (target/member ranges, RAID
  /// rebuild requirements) and schedules every fault. Returns
  /// InvalidArgument on a malformed plan without scheduling anything.
  Status Arm();

  const FaultPlan& plan() const { return plan_; }

  /// Faults applied so far (schedule-time counter; the per-target
  /// FaultStats count the same events from the receiving side).
  uint64_t faults_applied() const { return faults_applied_; }

  /// Faults that were invalid when their event fired — e.g. a rebuild
  /// with no preceding fail-stop — and were skipped, one message each.
  /// Arm() validates everything it can statically; these are the
  /// ordering-dependent leftovers.
  const std::vector<std::string>& skipped() const { return skipped_; }

 private:
  void Apply(const FaultSpec& spec);

  StorageSystem* system_;
  FaultPlan plan_;
  uint64_t faults_applied_ = 0;
  std::vector<std::string> skipped_;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_FAULT_H_
