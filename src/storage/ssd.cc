#include "storage/ssd.h"

#include <sstream>

#include "util/check.h"

namespace ldb {

SsdModel::SsdModel(SsdParams params) : params_(std::move(params)) {
  LDB_CHECK_GT(params_.capacity_bytes, 0);
  LDB_CHECK_GT(params_.transfer_mbps, 0.0);
  bytes_per_second_ = params_.transfer_mbps * static_cast<double>(kMiB);
}

double SsdModel::ServiceTime(const DeviceRequest& req) {
  LDB_CHECK_GE(req.offset, 0);
  LDB_CHECK_GT(req.size, 0);
  const double latency =
      req.is_write ? params_.write_latency_s : params_.read_latency_s;
  return latency + static_cast<double>(req.size) / bytes_per_second_;
}

double SsdModel::PositioningEstimate(const DeviceRequest&) const {
  return 0.0;
}

std::unique_ptr<BlockDevice> SsdModel::Clone() const {
  return std::make_unique<SsdModel>(params_);
}

std::string SsdModel::ParamsText() const {
  std::ostringstream out;
  out.precision(17);
  out << "ssd " << params_.model_name << " cap " << params_.capacity_bytes
      << " rlat " << params_.read_latency_s << " wlat "
      << params_.write_latency_s << " xfer " << params_.transfer_mbps;
  return out.str();
}

}  // namespace ldb
