#ifndef LAYOUTDB_STORAGE_IO_REQUEST_H_
#define LAYOUTDB_STORAGE_IO_REQUEST_H_

#include <cstdint>

namespace ldb {

/// Identifies the database object a request belongs to. Object ids are dense
/// indexes assigned by the catalog.
using ObjectId = int32_t;
inline constexpr ObjectId kNoObject = -1;

/// A block request addressed to a single device (LBA space of that device).
struct DeviceRequest {
  int64_t offset = 0;     ///< byte offset within the device
  int64_t size = 0;       ///< bytes transferred
  bool is_write = false;  ///< write vs. read
};

/// A block request addressed to a storage target (LBA space of the target;
/// targets stripe over one or more member devices).
struct TargetRequest {
  int64_t offset = 0;
  int64_t size = 0;
  bool is_write = false;
  ObjectId object = kNoObject;  ///< originating database object, for tracing
  /// Object-relative byte offset of this request (pre-layout address).
  /// Carried through for trace analysis: sequentiality is a property of the
  /// object's logical access pattern, not of the on-target placement.
  int64_t logical_offset = 0;
};

/// An I/O event observed at a storage target, as recorded by trace
/// collectors: one record per target request with its submit/completion
/// timestamps.
struct IoEvent {
  double submit_time = 0.0;
  double complete_time = 0.0;
  /// Monotone submission sequence number: trace consumers sort on
  /// (submit_time, seq) to recover exact issue order even when discrete
  /// simulation produces identical timestamps.
  uint64_t seq = 0;
  int32_t target = 0;
  ObjectId object = kNoObject;
  int64_t offset = 0;          ///< target-relative byte offset
  int64_t logical_offset = 0;  ///< object-relative byte offset
  int64_t size = 0;
  bool is_write = false;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_IO_REQUEST_H_
