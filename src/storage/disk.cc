#include "storage/disk.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ldb {

DiskParams Scsi15kParams() { return DiskParams{}; }

DiskParams Nearline7200Params() {
  DiskParams p;
  p.model_name = "disk-7200";
  p.capacity_bytes = 250 * kGiB;
  p.rpm = 7200;
  p.min_seek_s = 0.0006;
  p.max_seek_s = 0.013;
  p.transfer_mbps = 85.0;
  return p;
}

DiskModel::DiskModel(DiskParams params) : params_(std::move(params)) {
  LDB_CHECK_GT(params_.capacity_bytes, 0);
  LDB_CHECK_GT(params_.rpm, 0.0);
  LDB_CHECK_GT(params_.transfer_mbps, 0.0);
  LDB_CHECK_GE(params_.readahead_streams, 0);
  LDB_CHECK_GE(params_.max_seek_s, params_.min_seek_s);
  full_rotation_s_ = 60.0 / params_.rpm;
  bytes_per_second_ = params_.transfer_mbps * static_cast<double>(kMiB);
}

double DiskModel::SeekTime(int64_t distance) const {
  if (distance == 0) return 0.0;
  const double frac = static_cast<double>(distance) /
                      static_cast<double>(params_.capacity_bytes);
  // Concave seek curve: short seeks are dominated by settle time, long
  // seeks by the (roughly) constant-acceleration sweep.
  return params_.min_seek_s +
         (params_.max_seek_s - params_.min_seek_s) *
             std::sqrt(std::min(1.0, frac));
}

const DiskModel::Stream* DiskModel::MatchStream(
    const DeviceRequest& req) const {
  for (const Stream& s : streams_) {
    const int64_t gap = req.offset - s.next_offset;
    if (gap >= 0 && gap <= params_.sequential_slack_bytes) return &s;
  }
  return nullptr;
}

DiskModel::Stream* DiskModel::MatchStream(const DeviceRequest& req) {
  return const_cast<Stream*>(
      static_cast<const DiskModel*>(this)->MatchStream(req));
}

double DiskModel::PositioningEstimate(const DeviceRequest& req) const {
  double positioning;
  if (MatchStream(req) != nullptr) {
    // Continuation: free if the head is (nearly) there already, else the
    // stream-switch cost.
    const bool head_in_place =
        req.offset >= head_ &&
        req.offset - head_ <= params_.sequential_slack_bytes;
    positioning = head_in_place ? 0.0 : params_.stream_switch_penalty_s;
  } else {
    positioning =
        SeekTime(std::llabs(req.offset - head_)) + full_rotation_s_ / 2.0;
  }
  return req.is_write ? positioning * params_.write_positioning_factor
                      : positioning;
}

double DiskModel::ServiceTime(const DeviceRequest& req) {
  LDB_CHECK_GE(req.offset, 0);
  LDB_CHECK_GT(req.size, 0);
  double cost = params_.per_request_overhead_s;

  Stream* hit = MatchStream(req);
  if (hit != nullptr) {
    // Sequential continuation. Free only when the head is still at this
    // stream; if another request was served in between, the head must
    // reposition (partially hidden by the prefetch cache).
    const bool head_in_place =
        req.offset >= head_ &&
        req.offset - head_ <= params_.sequential_slack_bytes;
    if (!head_in_place) {
      const double switch_cost =
          req.is_write
              ? params_.stream_switch_penalty_s *
                    params_.write_positioning_factor
              : params_.stream_switch_penalty_s;
      cost += switch_cost;
    }
    hit->next_offset = req.offset + req.size;
    hit->last_use = ++use_counter_;
  } else {
    double positioning =
        SeekTime(std::llabs(req.offset - head_)) + full_rotation_s_ / 2.0;
    if (req.is_write) positioning *= params_.write_positioning_factor;
    cost += positioning;
    // Start tracking this as a new potential stream, evicting the LRU slot
    // if the drive is already tracking its maximum.
    if (params_.readahead_streams > 0) {
      if (static_cast<int>(streams_.size()) < params_.readahead_streams) {
        streams_.push_back(
            Stream{req.offset + req.size, ++use_counter_});
      } else {
        auto lru = std::min_element(
            streams_.begin(), streams_.end(),
            [](const Stream& a, const Stream& b) {
              return a.last_use < b.last_use;
            });
        lru->next_offset = req.offset + req.size;
        lru->last_use = ++use_counter_;
      }
    }
  }

  cost += static_cast<double>(req.size) / bytes_per_second_;
  head_ = req.offset + req.size;
  return cost;
}

void DiskModel::Reset() {
  head_ = 0;
  use_counter_ = 0;
  streams_.clear();
}

std::unique_ptr<BlockDevice> DiskModel::Clone() const {
  return std::make_unique<DiskModel>(params_);
}

std::string DiskModel::ParamsText() const {
  std::ostringstream out;
  out.precision(17);
  out << "disk " << params_.model_name << " cap " << params_.capacity_bytes
      << " rpm " << params_.rpm << " seek " << params_.min_seek_s << " "
      << params_.max_seek_s << " xfer " << params_.transfer_mbps << " ovh "
      << params_.per_request_overhead_s << " streams "
      << params_.readahead_streams << " slack "
      << params_.sequential_slack_bytes << " switch "
      << params_.stream_switch_penalty_s << " wpos "
      << params_.write_positioning_factor;
  return out.str();
}

}  // namespace ldb
