#include "storage/fault.h"

#include <cstdlib>
#include <utility>

#include "util/check.h"
#include "util/random.h"
#include "util/table.h"

namespace ldb {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop:
      return "fail";
    case FaultKind::kLimp:
      return "limp";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kRebuild:
      return "rebuild";
    case FaultKind::kRecover:
      return "recover";
  }
  return "unknown";
}

namespace {

Status ParseDouble(const std::string& value, const std::string& key,
                   double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("fault spec: bad number '%s' for key '%s'", value.c_str(),
                  key.c_str()));
  }
  return Status::Ok();
}

Status ParseInt(const std::string& value, const std::string& key,
                int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("fault spec: bad integer '%s' for key '%s'", value.c_str(),
                  key.c_str()));
  }
  return Status::Ok();
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  size_t pos = 0;
  int clause_index = 0;
  // Value ranges are checked here so a bad spec is rejected with clause
  // context before it reaches consumers that never Arm() an injector
  // (HealthFromFaultPlan silently ignores out-of-range entries).
  const auto clause_error = [&clause_index](const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("fault spec clause %d: %s", clause_index, what.c_str()));
  };
  while (pos <= text.size()) {
    const size_t clause_end = std::min(text.find(';', pos), text.size());
    const std::string clause = text.substr(pos, clause_end - pos);
    pos = clause_end + 1;
    if (clause.empty()) continue;
    ++clause_index;

    FaultSpec spec;
    bool has_fault_key = false;
    size_t cpos = 0;
    while (cpos <= clause.size()) {
      const size_t item_end = std::min(clause.find(',', cpos), clause.size());
      const std::string item = clause.substr(cpos, item_end - cpos);
      cpos = item_end + 1;
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return clause_error(
            StrFormat("'%s' is not key=value", item.c_str()));
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      int64_t iv = 0;
      double dv = 0.0;
      if (key == "seed") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        plan.seed = static_cast<uint64_t>(iv);
      } else if (key == "retries") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv < 0) return clause_error("retries must be >= 0");
        plan.max_retries = static_cast<int>(iv);
      } else if (key == "backoff") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv < 0.0) return clause_error("backoff must be >= 0");
        plan.retry_backoff_s = dv;
      } else if (key == "t") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv < 0.0) return clause_error("t must be >= 0");
        spec.time = dv;
        has_fault_key = true;
      } else if (key == "target") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv < 0) return clause_error("target must be >= 0");
        spec.target = static_cast<int>(iv);
        has_fault_key = true;
      } else if (key == "member") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv < 0) return clause_error("member must be >= 0");
        spec.member = static_cast<int>(iv);
        has_fault_key = true;
      } else if (key == "kind") {
        if (value == "fail") {
          spec.kind = FaultKind::kFailStop;
        } else if (value == "limp") {
          spec.kind = FaultKind::kLimp;
        } else if (value == "transient") {
          spec.kind = FaultKind::kTransient;
        } else if (value == "rebuild") {
          spec.kind = FaultKind::kRebuild;
        } else if (value == "recover") {
          spec.kind = FaultKind::kRecover;
        } else {
          return clause_error(
              StrFormat("unknown kind '%s'", value.c_str()));
        }
        has_fault_key = true;
      } else if (key == "scale") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv <= 0.0) return clause_error("scale must be > 0");
        spec.latency_scale = dv;
        has_fault_key = true;
      } else if (key == "p") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv < 0.0 || dv > 1.0) return clause_error("p must be in [0,1]");
        spec.error_prob = dv;
        has_fault_key = true;
      } else if (key == "duration") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv < 0.0) return clause_error("duration must be >= 0");
        spec.duration = dv;
        has_fault_key = true;
      } else if (key == "chunk") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv <= 0) return clause_error("chunk must be > 0");
        spec.rebuild_chunk_bytes = iv;
        has_fault_key = true;
      } else {
        return clause_error(StrFormat("unknown key '%s'", key.c_str()));
      }
    }
    if (has_fault_key) plan.faults.push_back(spec);
  }
  return plan;
}

std::string FaultPlanToString(const FaultPlan& plan) {
  std::string out = StrFormat("seed=%llu,retries=%d,backoff=%g",
                              static_cast<unsigned long long>(plan.seed),
                              plan.max_retries, plan.retry_backoff_s);
  for (const FaultSpec& f : plan.faults) {
    out += StrFormat(";t=%g,target=%d,member=%d,kind=%s", f.time, f.target,
                     f.member, FaultKindName(f.kind));
    if (f.kind == FaultKind::kLimp) {
      out += StrFormat(",scale=%g", f.latency_scale);
    }
    if (f.kind == FaultKind::kTransient) {
      out += StrFormat(",p=%g", f.error_prob);
    }
    if (f.duration > 0.0) out += StrFormat(",duration=%g", f.duration);
    if (f.kind == FaultKind::kRebuild) {
      out += StrFormat(",chunk=%lld",
                       static_cast<long long>(f.rebuild_chunk_bytes));
    }
  }
  return out;
}

FaultInjector::FaultInjector(StorageSystem* system, FaultPlan plan)
    : system_(system), plan_(std::move(plan)) {
  LDB_CHECK(system_ != nullptr);
}

Status FaultInjector::Arm() {
  if (plan_.max_retries < 0) {
    return Status::InvalidArgument("fault plan: retries must be >= 0");
  }
  if (plan_.retry_backoff_s < 0.0) {
    return Status::InvalidArgument("fault plan: backoff must be >= 0");
  }
  for (const FaultSpec& f : plan_.faults) {
    if (f.time < 0.0) {
      return Status::InvalidArgument("fault plan: fault time must be >= 0");
    }
    if (f.target < 0 || f.target >= system_->num_targets()) {
      return Status::InvalidArgument(
          StrFormat("fault plan: target %d out of range", f.target));
    }
    const StorageTarget& t = system_->target(f.target);
    if (f.member < 0 || f.member >= t.num_members()) {
      return Status::InvalidArgument(
          StrFormat("fault plan: member %d out of range for target %s",
                    f.member, t.name().c_str()));
    }
    switch (f.kind) {
      case FaultKind::kLimp:
        if (f.latency_scale <= 0.0) {
          return Status::InvalidArgument(
              "fault plan: limp scale must be > 0");
        }
        break;
      case FaultKind::kTransient:
        if (f.error_prob < 0.0 || f.error_prob > 1.0) {
          return Status::InvalidArgument(
              "fault plan: transient p must be in [0,1]");
        }
        break;
      case FaultKind::kRebuild:
        if (t.raid_level() == RaidLevel::kRaid0) {
          return Status::InvalidArgument(StrFormat(
              "fault plan: target %s is RAID0 — nothing to rebuild from; "
              "replan the layout instead",
              t.name().c_str()));
        }
        if (f.rebuild_chunk_bytes <= 0) {
          return Status::InvalidArgument(
              "fault plan: rebuild chunk must be > 0");
        }
        break;
      case FaultKind::kFailStop:
      case FaultKind::kRecover:
        break;
    }
  }

  // Seed every target's transient-error stream from the plan seed. Streams
  // are per-target (MixSeed) and the event loop is serial, so the whole
  // error sequence is a pure function of the plan — independent of solver
  // or calibration thread counts.
  for (int j = 0; j < system_->num_targets(); ++j) {
    StorageTarget& t = system_->target(j);
    t.SeedFaultRng(MixSeed(plan_.seed, static_cast<uint64_t>(j)));
    t.SetRetryPolicy(plan_.max_retries, plan_.retry_backoff_s);
  }
  for (const FaultSpec& f : plan_.faults) {
    system_->queue().ScheduleAfter(f.time, [this, f]() { Apply(f); });
  }
  return Status::Ok();
}

void FaultInjector::Apply(const FaultSpec& spec) {
  StorageTarget& t = system_->target(spec.target);
  if (spec.kind == FaultKind::kRebuild) {
    // Whether a rebuild is valid depends on event ordering (the matching
    // fail-stop must already have fired), which Arm() cannot check from
    // the static plan. The spec is user input: record the skip and keep
    // the run alive instead of crashing.
    const Status s = t.StartRebuild(spec.member, spec.rebuild_chunk_bytes);
    if (!s.ok()) {
      skipped_.push_back(
          StrFormat("t=%g: %s", spec.time, s.message().c_str()));
      return;
    }
    ++faults_applied_;
    return;
  }
  ++faults_applied_;
  switch (spec.kind) {
    case FaultKind::kFailStop:
      t.FailMember(spec.member);
      break;
    case FaultKind::kLimp: {
      t.SetMemberLatencyScale(spec.member, spec.latency_scale);
      if (spec.duration > 0.0) {
        const int target = spec.target;
        const int member = spec.member;
        system_->queue().ScheduleAfter(spec.duration, [this, target,
                                                       member]() {
          system_->target(target).SetMemberLatencyScale(member, 1.0);
        });
      }
      break;
    }
    case FaultKind::kTransient: {
      t.SetMemberErrorProbability(spec.member, spec.error_prob);
      if (spec.duration > 0.0) {
        const int target = spec.target;
        const int member = spec.member;
        system_->queue().ScheduleAfter(spec.duration, [this, target,
                                                       member]() {
          system_->target(target).SetMemberErrorProbability(member, 0.0);
        });
      }
      break;
    }
    case FaultKind::kRebuild:
      break;  // handled above
    case FaultKind::kRecover:
      t.RecoverMember(spec.member);
      break;
  }
}

}  // namespace ldb
