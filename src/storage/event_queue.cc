#include "storage/event_queue.h"

#include <utility>

#include "util/check.h"

namespace ldb {

std::atomic<uint64_t> EventQueue::Callback::heap_allocations_{0};

void EventQueue::ScheduleAt(double when, Callback cb) {
  LDB_CHECK_GE(when, now_);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pool_[slot] = std::move(cb);
  } else {
    slot = static_cast<uint32_t>(pool_.size());
    pool_.push_back(std::move(cb));
  }
  events_.push(PendingEvent{when, next_seq_++, slot});
}

void EventQueue::ScheduleAfter(double delay, Callback cb) {
  LDB_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventQueue::RunOne() {
  const PendingEvent ev = events_.top();
  events_.pop();
  now_ = ev.when;
  ++events_executed_;
  // Move the callback out and recycle the slot before invoking: the
  // callback may schedule more events into this queue.
  Callback cb = std::move(pool_[ev.slot]);
  free_slots_.push_back(ev.slot);
  cb();
}

double EventQueue::RunUntilIdle() {
  while (!events_.empty()) RunOne();
  return now_;
}

double EventQueue::RunUntil(double deadline) {
  while (!events_.empty() && events_.top().when <= deadline) RunOne();
  return now_;
}

}  // namespace ldb
