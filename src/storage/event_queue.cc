#include "storage/event_queue.h"

#include <utility>

#include "util/check.h"

namespace ldb {

void EventQueue::ScheduleAt(double when, Callback cb) {
  LDB_CHECK_GE(when, now_);
  events_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(double delay, Callback cb) {
  LDB_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

double EventQueue::RunUntilIdle() {
  while (!events_.empty()) {
    // The callback may schedule more events, so pop before invoking.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ++events_executed_;
    ev.cb();
  }
  return now_;
}

double EventQueue::RunUntil(double deadline) {
  while (!events_.empty() && events_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ++events_executed_;
    ev.cb();
  }
  if (now_ < deadline && events_.empty()) {
    // Idle before the deadline: clock stays at the last event.
  }
  return now_;
}

}  // namespace ldb
