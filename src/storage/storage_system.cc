#include "storage/storage_system.h"

#include <utility>

#include "util/check.h"

namespace ldb {

StorageSystem::StorageSystem(const std::vector<TargetSpec>& specs) {
  LDB_CHECK(!specs.empty());
  targets_.reserve(specs.size());
  for (const TargetSpec& spec : specs) {
    LDB_CHECK(spec.prototype != nullptr);
    LDB_CHECK_GT(spec.num_members, 0);
    std::vector<std::unique_ptr<BlockDevice>> members;
    members.reserve(static_cast<size_t>(spec.num_members));
    for (int i = 0; i < spec.num_members; ++i) {
      members.push_back(spec.prototype->Clone());
    }
    targets_.push_back(std::make_unique<StorageTarget>(
        spec.name, std::move(members), spec.stripe_bytes, &queue_,
        spec.scheduler_max_wait_s, spec.raid_level));
  }
}

void StorageSystem::Submit(int j, const TargetRequest& req,
                           StorageTarget::Completion done) {
  if (done) {
    SubmitWithStatus(j, req,
           StorageTarget::StatusCompletion(
               [done = std::move(done)](double complete_time, const Status&) {
                 done(complete_time);
               }));
  } else {
    SubmitWithStatus(j, req, StorageTarget::StatusCompletion());
  }
}

void StorageSystem::SubmitWithStatus(int j, const TargetRequest& req,
                                     StorageTarget::StatusCompletion done) {
  LDB_CHECK_GE(j, 0);
  LDB_CHECK_LT(j, num_targets());
  const double submit_time = queue_.Now();
  if (observer_) {
    const uint64_t seq = next_seq_++;
    targets_[static_cast<size_t>(j)]->SubmitWithStatus(
        req, StorageTarget::StatusCompletion(
                 [this, j, req, submit_time, seq, done = std::move(done)](
                     double complete_time, const Status& status) {
                   IoEvent ev;
                   ev.submit_time = submit_time;
                   ev.seq = seq;
                   ev.complete_time = complete_time;
                   ev.target = j;
                   ev.object = req.object;
                   ev.offset = req.offset;
                   ev.logical_offset = req.logical_offset;
                   ev.size = req.size;
                   ev.is_write = req.is_write;
                   observer_(ev);
                   if (done) done(complete_time, status);
                 }));
  } else {
    targets_[static_cast<size_t>(j)]->SubmitWithStatus(req, std::move(done));
  }
}

std::vector<int64_t> StorageSystem::capacities() const {
  std::vector<int64_t> caps;
  caps.reserve(targets_.size());
  for (const auto& t : targets_) caps.push_back(t->capacity_bytes());
  return caps;
}

double StorageSystem::MeasuredUtilization(int j, double elapsed) const {
  LDB_CHECK_GT(elapsed, 0.0);
  const StorageTarget& t = *targets_[static_cast<size_t>(j)];
  return t.busy_time() / (elapsed * t.num_members());
}

uint64_t StorageSystem::InflightRequests() const {
  uint64_t total = 0;
  for (const auto& t : targets_) total += t->inflight_requests();
  return total;
}

FaultStats StorageSystem::TotalFaultStats() const {
  FaultStats total;
  for (const auto& t : targets_) total += t->fault_stats();
  return total;
}

}  // namespace ldb
