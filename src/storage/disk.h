#ifndef LAYOUTDB_STORAGE_DISK_H_
#define LAYOUTDB_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/device.h"
#include "util/units.h"

namespace ldb {

/// Parameters of a rotational disk drive model.
struct DiskParams {
  std::string model_name = "disk-15k";
  int64_t capacity_bytes = 18 * kGiB + 410 * kMiB;  ///< ~18.4 GB, as in paper
  double rpm = 15000;                  ///< spindle speed
  double min_seek_s = 0.0002;          ///< track-to-track seek
  double max_seek_s = 0.0075;          ///< full-stroke seek
  double transfer_mbps = 72.0;         ///< sustained media rate, MiB/s
  double per_request_overhead_s = 5e-5;  ///< controller/command overhead
  /// Number of concurrent sequential streams the drive can track with its
  /// prefetch/track cache. Interleaved sequential streams beyond this limit
  /// lose their sequential advantage — the interference effect at the heart
  /// of the paper (Fig. 8).
  int readahead_streams = 2;
  /// Tolerance for treating a request as continuing a tracked stream:
  /// a request whose offset lands within this many bytes *forward* of the
  /// stream head still counts as sequential (models readahead absorbing
  /// small skips).
  int64_t sequential_slack_bytes = 64 * kKiB;
  /// Positioning cost charged when a request continues a tracked stream
  /// but the head served something else in between. The prefetch cache
  /// keeps the request "sequential" (no full seek + rotation), yet the
  /// head must move back to the stream's region, so interleaved sequential
  /// streams run below full media rate — the reason the paper's advisor
  /// isolates concurrently-scanned tables.
  double stream_switch_penalty_s = 2.5e-3;
  /// Fraction of positioning cost charged to writes (write-back caching in
  /// the drive/controller hides part of the mechanical latency).
  double write_positioning_factor = 0.6;
};

/// Returns the parameters used for the paper's 18.4 GB 15K-RPM SCSI drives.
DiskParams Scsi15kParams();

/// Returns parameters for a capacity-oriented 7200-RPM nearline drive
/// (used in heterogeneous-target scenarios and tests).
DiskParams Nearline7200Params();

/// Rotational disk: seek + rotational latency + media transfer, with a
/// bounded number of tracked sequential streams (prefetch slots).
///
/// Behavioural properties this model is built to reproduce:
///  * sequential runs served at media rate once a stream is established;
///  * at most `readahead_streams` interleaved sequential streams keep their
///    sequential advantage; additional streams degrade to seek+rotate per
///    request (interference, paper Fig. 8);
///  * seek cost grows concavely with distance, so SCAN-style scheduling
///    lowers per-request cost at higher queue depth.
class DiskModel final : public BlockDevice {
 public:
  explicit DiskModel(DiskParams params);

  double ServiceTime(const DeviceRequest& req) override;
  double PositioningEstimate(const DeviceRequest& req) const override;
  int64_t capacity_bytes() const override { return params_.capacity_bytes; }
  void Reset() override;
  std::unique_ptr<BlockDevice> Clone() const override;
  const std::string& model_name() const override {
    return params_.model_name;
  }
  std::string ParamsText() const override;

  const DiskParams& params() const { return params_; }

  /// Seek time for a head movement of `distance` bytes (concave curve).
  double SeekTime(int64_t distance) const;

 private:
  struct Stream {
    int64_t next_offset = 0;  ///< expected offset of the next request
    uint64_t last_use = 0;    ///< LRU stamp
  };

  /// Returns the tracked stream `req` continues, or nullptr.
  const Stream* MatchStream(const DeviceRequest& req) const;
  Stream* MatchStream(const DeviceRequest& req);

  DiskParams params_;
  double full_rotation_s_;
  double bytes_per_second_;
  int64_t head_ = 0;           ///< current head position (byte LBA)
  uint64_t use_counter_ = 0;   ///< LRU clock
  std::vector<Stream> streams_;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_DISK_H_
