#ifndef LAYOUTDB_STORAGE_TARGET_H_
#define LAYOUTDB_STORAGE_TARGET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/device.h"
#include "storage/event_queue.h"
#include "storage/io_request.h"
#include "util/random.h"
#include "util/status.h"
#include "util/units.h"

namespace ldb {

/// RAID organization of a multi-member storage target.
enum class RaidLevel {
  kRaid0,  ///< striping; capacity = sum of members
  kRaid1,  ///< mirroring; reads spread over members, writes go to all;
           ///< capacity = one member
  kRaid5,  ///< striping + rotating parity; capacity = members - 1; small
           ///< writes pay the parity read-modify-write penalty
};

const char* RaidLevelName(RaidLevel level);

/// Health of one member device within a target.
enum class MemberHealth {
  kHealthy,     ///< serving regular I/O
  kDead,        ///< fail-stop: serves nothing
  kRebuilding,  ///< hot spare being filled; serves only rebuild writes
};

/// Fault-related counters of a target (or, summed, of a system). All are
/// cleared by Reset() and filled deterministically by a seeded FaultPlan.
struct FaultStats {
  uint64_t faults_injected = 0;   ///< fault-state changes applied
  uint64_t transient_errors = 0;  ///< sub-requests that drew an I/O error
  uint64_t retries = 0;           ///< transient errors that were retried
  uint64_t failed_requests = 0;   ///< target requests completed with error
  uint64_t degraded_reads = 0;    ///< reads served via survivors/parity
  int64_t rebuild_bytes = 0;      ///< bytes written onto rebuilding members
  double degraded_time = 0.0;     ///< seconds with any fault condition active

  FaultStats& operator+=(const FaultStats& o) {
    faults_injected += o.faults_injected;
    transient_errors += o.transient_errors;
    retries += o.retries;
    failed_requests += o.failed_requests;
    degraded_reads += o.degraded_reads;
    rebuild_bytes += o.rebuild_bytes;
    degraded_time += o.degraded_time;
    return *this;
  }
};

/// An independent storage target: one or more member devices in a RAID
/// configuration, each with its own request queue and a
/// shortest-positioning-first scheduler with a deadline-style starvation
/// bound.
///
/// A single-disk or single-SSD target is simply a one-member RAID0
/// instance. A "3-disk RAID0" target (paper Section 6.4) is a
/// three-member instance. The paper notes RAID groups "vary in
/// configuration, e.g., in the RAID level used"; RAID1 and RAID5 targets
/// model the corresponding read fan-out, write fan-out, and parity
/// read-modify-write behaviour.
///
/// Requests address the target's linear byte space; the target splits them
/// into per-member sub-requests along stripe boundaries. The completion
/// callback fires when the last sub-request finishes.
///
/// Fault model: members can die (fail-stop), limp (scaled latency), or
/// throw transient errors (retried up to a bound, then surfaced as a
/// kIoError Status). A RAID1/RAID5 group with one dead member keeps
/// serving in degraded mode — reads reconstruct from survivors — and
/// StartRebuild() streams the dead member's contents back onto a hot
/// spare while regular traffic continues. A RAID0 group (including every
/// single-device target) with a dead member is unserviceable: requests
/// complete immediately with an error.
class StorageTarget {
 public:
  using Completion = std::function<void(double complete_time)>;
  /// Completion with the request outcome: OK, or kIoError when a
  /// sub-request exhausted its retries or the group could not serve it.
  using StatusCompletion =
      std::function<void(double complete_time, const Status& status)>;

  /// \param name human-readable target name (for reports).
  /// \param members devices grouped together; all must be non-null.
  ///   RAID1 requires >= 2 members, RAID5 >= 3.
  /// \param stripe_bytes RAID chunk size; ignored for single members.
  /// \param queue simulation event queue; must outlive the target.
  /// \param scheduler_max_wait_s starvation bound: a queued request older
  ///   than this is served next regardless of positioning cost (deadline
  ///   scheduling, as the paper-era Linux I/O schedulers do). Without it,
  ///   shortest-positioning-first lets one sequential stream monopolize
  ///   the device.
  /// \param raid_level RAID organization of the member group.
  StorageTarget(std::string name,
                std::vector<std::unique_ptr<BlockDevice>> members,
                int64_t stripe_bytes, EventQueue* queue,
                double scheduler_max_wait_s = 0.060,
                RaidLevel raid_level = RaidLevel::kRaid0);

  StorageTarget(const StorageTarget&) = delete;
  StorageTarget& operator=(const StorageTarget&) = delete;

  /// Submits a request; `done` fires (via the event queue) at completion.
  /// Errors are visible only through fault_stats() on this overload.
  void Submit(const TargetRequest& req, Completion done);

  /// Submits a request; `done` receives the completion time and outcome.
  void SubmitWithStatus(const TargetRequest& req, StatusCompletion done);

  /// Usable capacity (depends on the RAID level).
  int64_t capacity_bytes() const { return capacity_bytes_; }

  /// Number of member devices (the target's internal parallelism).
  int num_members() const { return static_cast<int>(members_.size()); }

  RaidLevel raid_level() const { return raid_level_; }

  const std::string& name() const { return name_; }

  /// Model name of the member devices (all members share one model).
  const std::string& device_model() const {
    return members_.front()->model_name();
  }

  /// Total time members of this target spent busy (device-seconds). The
  /// measured analogue of the paper's utilization µ_j once divided by
  /// elapsed time and member count.
  double busy_time() const { return busy_time_; }

  /// Number of target-level requests completed (rebuild traffic excluded).
  uint64_t requests_completed() const { return requests_completed_; }

  /// Target-level requests submitted but not yet completed (rebuild traffic
  /// excluded). The migration throttle reads this, summed over the system,
  /// to estimate foreground queue depth.
  uint64_t inflight_requests() const { return inflight_requests_; }

  /// True when the group can serve I/O at all given current member health:
  /// RAID0 needs every member, RAID1 at least one, RAID5 all but one.
  bool serviceable() const;

  // ---- Fault injection (driven by FaultInjector; callable directly). ----

  /// Seeds the RNG behind transient-error coin flips. The simulation loop
  /// is serial, so one seed fixes the whole error sequence.
  void SeedFaultRng(uint64_t seed) { fault_rng_ = Rng(seed); }

  /// Bounds transient-error retries; the n-th retry of a sub-request waits
  /// n * backoff_s before re-queueing.
  void SetRetryPolicy(int max_retries, double backoff_s);

  int max_retries() const { return max_retries_; }

  /// Fail-stops member `m`. Its queued sub-requests are re-routed through
  /// the degraded path (or failed, for RAID0); an in-service sub-request
  /// finishes normally.
  void FailMember(int m);

  /// Returns member `m` to full health instantly, clearing its latency
  /// scale and error probability (the blunt recovery used when rebuild
  /// traffic is not being modelled).
  void RecoverMember(int m);

  /// Scales member `m`'s service times ("limping" device). 1.0 = healthy.
  void SetMemberLatencyScale(int m, double scale);

  /// Each sub-request on member `m` independently fails with probability
  /// `p` after consuming its service time. 0 = healthy.
  void SetMemberErrorProbability(int m, double p);

  /// Begins rebuilding dead member `m` onto a fresh hot spare, reading
  /// survivors and writing `chunk_bytes` at a time in closed loop until
  /// the member's full capacity is rewritten; the member then returns to
  /// health. Returns FailedPrecondition (without starting) when the
  /// member is not dead, the group is RAID0, or the rebuild source is
  /// missing — RAID1 needs >= 1 healthy member, RAID5 all other members
  /// healthy. If the source is lost mid-rebuild, the member is parked
  /// dead again and a later StartRebuild may retry.
  Status StartRebuild(int m, int64_t chunk_bytes = 4 * kMiB);

  MemberHealth member_health(int m) const {
    return member_health_[static_cast<size_t>(m)];
  }

  /// True when any member is dead, rebuilding, limping, or error-prone.
  bool degraded() const;

  /// Fault counters; degraded_time includes the currently-open degraded
  /// interval up to the present simulation time.
  FaultStats fault_stats() const;

  /// Resets devices, statistics, and all fault state (members healthy).
  /// Requires an idle target. The fault RNG seed and retry policy persist
  /// so an armed injector stays in control across the reset at run start.
  void Reset();

 private:
  struct SubRequest {
    DeviceRequest dev_req;
    int64_t parent = 0;       ///< index into inflight_
    double enqueue_time = 0;  ///< for the starvation bound
    int attempts = 0;         ///< transient-error retries consumed
  };
  struct Inflight {
    int pending_subs = 0;
    bool internal = false;  ///< rebuild traffic: skip request accounting
    Status status;          ///< first error among this request's subs
    StatusCompletion done;
  };

  /// Allocates an inflight slot for `done` and returns its index.
  int64_t AllocateSlot(StatusCompletion done);

  /// Enqueues one sub-request on member `m` for inflight slot `slot`.
  void EnqueueSub(size_t m, const DeviceRequest& dev_req, int64_t slot,
                  int* subs);

  /// Per-level request decomposition; each returns the sub-request count.
  int SubmitRaid0(const TargetRequest& req, int64_t slot);
  int SubmitRaid1(const TargetRequest& req, int64_t slot);
  int SubmitRaid5(const TargetRequest& req, int64_t slot);

  /// Dispatches the best queued sub-request on member `m` if it is idle.
  void MaybeDispatch(size_t m);

  /// Records one finished (or absorbed) sub-request of `parent`, firing
  /// the completion when it was the last.
  void FinishSub(int64_t parent);

  /// True when the member serves regular I/O.
  bool Serves(size_t m) const {
    return member_health_[m] == MemberHealth::kHealthy;
  }
  int ServingCount() const;

  /// Fails or re-routes a sub-request that was queued on a member that
  /// just died.
  void ReRouteOrphan(size_t dead_member, const SubRequest& sub);

  /// Fails the whole request in `slot` with an I/O error (scheduled so the
  /// completion still arrives via the event queue).
  void FailRequest(int64_t slot, const char* why);

  /// Issues the next rebuild chunk for member `m`, or completes the
  /// rebuild when the member has been fully rewritten.
  void ContinueRebuild(int m);

  /// Opens/closes the degraded-time interval after a fault-state change.
  void UpdateDegradedClock();

  std::string name_;
  std::vector<std::unique_ptr<BlockDevice>> members_;
  int64_t stripe_bytes_;
  int64_t capacity_bytes_ = 0;
  EventQueue* queue_;
  double scheduler_max_wait_s_;
  RaidLevel raid_level_;
  size_t next_read_member_ = 0;  ///< RAID1 read distribution cursor

  std::vector<std::deque<SubRequest>> member_queues_;
  std::vector<bool> member_busy_;
  std::vector<Inflight> inflight_;
  std::vector<int64_t> free_slots_;  ///< reusable indexes into inflight_

  // Fault state (all per-member, indexed like members_).
  std::vector<MemberHealth> member_health_;
  std::vector<double> member_latency_scale_;
  std::vector<double> member_error_prob_;
  std::vector<int64_t> rebuild_pos_;    ///< next byte to rebuild
  std::vector<int64_t> rebuild_chunk_;  ///< rebuild granularity
  int max_retries_ = 3;
  double retry_backoff_s_ = 0.002;
  Rng fault_rng_{1};
  FaultStats stats_;
  double degraded_since_ = -1.0;  ///< open interval start; < 0 = healthy

  double busy_time_ = 0.0;
  uint64_t requests_completed_ = 0;
  uint64_t inflight_requests_ = 0;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_TARGET_H_
