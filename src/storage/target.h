#ifndef LAYOUTDB_STORAGE_TARGET_H_
#define LAYOUTDB_STORAGE_TARGET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/device.h"
#include "storage/event_queue.h"
#include "storage/io_request.h"
#include "util/units.h"

namespace ldb {

/// RAID organization of a multi-member storage target.
enum class RaidLevel {
  kRaid0,  ///< striping; capacity = sum of members
  kRaid1,  ///< mirroring; reads spread over members, writes go to all;
           ///< capacity = one member
  kRaid5,  ///< striping + rotating parity; capacity = members - 1; small
           ///< writes pay the parity read-modify-write penalty
};

const char* RaidLevelName(RaidLevel level);

/// An independent storage target: one or more member devices in a RAID
/// configuration, each with its own request queue and a
/// shortest-positioning-first scheduler with a deadline-style starvation
/// bound.
///
/// A single-disk or single-SSD target is simply a one-member RAID0
/// instance. A "3-disk RAID0" target (paper Section 6.4) is a
/// three-member instance. The paper notes RAID groups "vary in
/// configuration, e.g., in the RAID level used"; RAID1 and RAID5 targets
/// model the corresponding read fan-out, write fan-out, and parity
/// read-modify-write behaviour.
///
/// Requests address the target's linear byte space; the target splits them
/// into per-member sub-requests along stripe boundaries. The completion
/// callback fires when the last sub-request finishes.
class StorageTarget {
 public:
  using Completion = std::function<void(double complete_time)>;

  /// \param name human-readable target name (for reports).
  /// \param members devices grouped together; all must be non-null.
  ///   RAID1 requires >= 2 members, RAID5 >= 3.
  /// \param stripe_bytes RAID chunk size; ignored for single members.
  /// \param queue simulation event queue; must outlive the target.
  /// \param scheduler_max_wait_s starvation bound: a queued request older
  ///   than this is served next regardless of positioning cost (deadline
  ///   scheduling, as the paper-era Linux I/O schedulers do). Without it,
  ///   shortest-positioning-first lets one sequential stream monopolize
  ///   the device.
  /// \param raid_level RAID organization of the member group.
  StorageTarget(std::string name,
                std::vector<std::unique_ptr<BlockDevice>> members,
                int64_t stripe_bytes, EventQueue* queue,
                double scheduler_max_wait_s = 0.060,
                RaidLevel raid_level = RaidLevel::kRaid0);

  StorageTarget(const StorageTarget&) = delete;
  StorageTarget& operator=(const StorageTarget&) = delete;

  /// Submits a request; `done` fires (via the event queue) at completion.
  void Submit(const TargetRequest& req, Completion done);

  /// Usable capacity (depends on the RAID level).
  int64_t capacity_bytes() const { return capacity_bytes_; }

  /// Number of member devices (the target's internal parallelism).
  int num_members() const { return static_cast<int>(members_.size()); }

  RaidLevel raid_level() const { return raid_level_; }

  const std::string& name() const { return name_; }

  /// Model name of the member devices (all members share one model).
  const std::string& device_model() const {
    return members_.front()->model_name();
  }

  /// Total time members of this target spent busy (device-seconds). The
  /// measured analogue of the paper's utilization µ_j once divided by
  /// elapsed time and member count.
  double busy_time() const { return busy_time_; }

  /// Number of target-level requests completed.
  uint64_t requests_completed() const { return requests_completed_; }

  /// Resets devices and statistics. Requires an idle target.
  void Reset();

 private:
  struct SubRequest {
    DeviceRequest dev_req;
    int64_t parent = 0;       ///< index into inflight_
    double enqueue_time = 0;  ///< for the starvation bound
  };
  struct Inflight {
    int pending_subs = 0;
    Completion done;
  };

  /// Allocates an inflight slot for `done` and returns its index.
  int64_t AllocateSlot(Completion done);

  /// Enqueues one sub-request on member `m` for inflight slot `slot`.
  void EnqueueSub(size_t m, const DeviceRequest& dev_req, int64_t slot,
                  int* subs);

  /// Per-level request decomposition; each returns the sub-request count.
  int SubmitRaid0(const TargetRequest& req, int64_t slot);
  int SubmitRaid1(const TargetRequest& req, int64_t slot);
  int SubmitRaid5(const TargetRequest& req, int64_t slot);

  /// Dispatches the best queued sub-request on member `m` if it is idle.
  void MaybeDispatch(size_t m);

  std::string name_;
  std::vector<std::unique_ptr<BlockDevice>> members_;
  int64_t stripe_bytes_;
  int64_t capacity_bytes_ = 0;
  EventQueue* queue_;
  double scheduler_max_wait_s_;
  RaidLevel raid_level_;
  size_t next_read_member_ = 0;  ///< RAID1 read distribution cursor

  std::vector<std::deque<SubRequest>> member_queues_;
  std::vector<bool> member_busy_;
  std::vector<Inflight> inflight_;
  std::vector<int64_t> free_slots_;  ///< reusable indexes into inflight_

  double busy_time_ = 0.0;
  uint64_t requests_completed_ = 0;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_TARGET_H_
