#include "storage/lvm.h"

#include <algorithm>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

Result<StripedVolumeManager> StripedVolumeManager::Create(
    std::vector<int64_t> object_sizes,
    std::vector<std::vector<int>> placements,
    const std::vector<int64_t>& target_capacities, int64_t stripe_bytes) {
  if (object_sizes.size() != placements.size()) {
    return Status::InvalidArgument("object_sizes/placements size mismatch");
  }
  if (stripe_bytes <= 0) {
    return Status::InvalidArgument("stripe size must be positive");
  }
  StripedVolumeManager mgr;
  mgr.object_sizes_ = std::move(object_sizes);
  mgr.placements_ = std::move(placements);
  mgr.stripe_bytes_ = stripe_bytes;
  mgr.allocated_.assign(target_capacities.size(), 0);
  mgr.extent_base_.resize(mgr.placements_.size());

  const int m = static_cast<int>(target_capacities.size());
  for (size_t i = 0; i < mgr.placements_.size(); ++i) {
    const auto& targets = mgr.placements_[i];
    if (targets.empty()) {
      return Status::InvalidArgument(
          StrFormat("object %zu has no targets", i));
    }
    std::vector<int> sorted = targets;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument(
          StrFormat("object %zu lists a target twice", i));
    }
    if (sorted.front() < 0 || sorted.back() >= m) {
      return Status::InvalidArgument(
          StrFormat("object %zu references an unknown target", i));
    }
    if (mgr.object_sizes_[i] <= 0) {
      return Status::InvalidArgument(
          StrFormat("object %zu has non-positive size", i));
    }

    const int64_t n = static_cast<int64_t>(targets.size());
    const int64_t total_stripes =
        (mgr.object_sizes_[i] + stripe_bytes - 1) / stripe_bytes;
    mgr.extent_base_[i].resize(targets.size());
    for (int64_t slot = 0; slot < n; ++slot) {
      // Stripes with (stripe_index % n) == slot land on this target.
      const int64_t count =
          total_stripes > slot ? (total_stripes - 1 - slot) / n + 1 : 0;
      const int64_t extent = count * stripe_bytes;
      const int j = targets[static_cast<size_t>(slot)];
      mgr.extent_base_[i][static_cast<size_t>(slot)] =
          mgr.allocated_[static_cast<size_t>(j)];
      mgr.allocated_[static_cast<size_t>(j)] += extent;
    }
  }

  for (int j = 0; j < m; ++j) {
    if (mgr.allocated_[static_cast<size_t>(j)] >
        target_capacities[static_cast<size_t>(j)]) {
      return Status::CapacityExceeded(StrFormat(
          "target %d: need %lld bytes, capacity %lld", j,
          static_cast<long long>(mgr.allocated_[static_cast<size_t>(j)]),
          static_cast<long long>(target_capacities[static_cast<size_t>(j)])));
    }
  }
  return mgr;
}

void StripedVolumeManager::Map(ObjectId object, int64_t offset, int64_t size,
                               std::vector<TargetChunk>* out) const {
  const size_t i = static_cast<size_t>(object);
  LDB_CHECK_LT(i, object_sizes_.size());
  LDB_CHECK_GE(offset, 0);
  LDB_CHECK_GT(size, 0);
  LDB_CHECK_LE(offset + size, object_sizes_[i]);

  const auto& targets = placements_[i];
  const int64_t n = static_cast<int64_t>(targets.size());
  int64_t off = offset;
  int64_t remaining = size;
  while (remaining > 0) {
    const int64_t stripe_index = off / stripe_bytes_;
    const int64_t within = off % stripe_bytes_;
    const int64_t chunk = std::min(remaining, stripe_bytes_ - within);
    const int64_t slot = stripe_index % n;
    const int64_t seq = stripe_index / n;  // stripe ordinal on that target
    const int target = targets[static_cast<size_t>(slot)];
    const int64_t target_off =
        extent_base_[i][static_cast<size_t>(slot)] + seq * stripe_bytes_ +
        within;
    // Coalesce with the previous chunk when contiguous on the same target
    // (always the case for single-target objects).
    if (!out->empty() && out->back().target == target &&
        out->back().offset + out->back().size == target_off) {
      out->back().size += chunk;
    } else {
      out->push_back(TargetChunk{target, target_off, chunk, data_epoch_});
    }
    off += chunk;
    remaining -= chunk;
  }
}

}  // namespace ldb
