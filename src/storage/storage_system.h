#ifndef LAYOUTDB_STORAGE_STORAGE_SYSTEM_H_
#define LAYOUTDB_STORAGE_STORAGE_SYSTEM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/event_queue.h"
#include "storage/io_request.h"
#include "storage/target.h"

namespace ldb {

/// Describes a storage target to be built: a device prototype plus how many
/// copies of it are striped together.
struct TargetSpec {
  std::string name;
  const BlockDevice* prototype = nullptr;  ///< cloned per member
  int num_members = 1;
  int64_t stripe_bytes = 64 * kKiB;  ///< RAID chunk size
  double scheduler_max_wait_s = 0.060;  ///< scheduler starvation bound
  RaidLevel raid_level = RaidLevel::kRaid0;
};

/// The simulated storage system: an event queue plus M independent targets.
///
/// This is the substrate the paper's evaluation ran on real hardware; here
/// every target is a simulated device group. Workload runners submit
/// target-addressed requests; an optional observer sees every completed
/// request (used by the trace collector).
class StorageSystem {
 public:
  using Observer = std::function<void(const IoEvent&)>;

  /// Builds the system from target specs (each prototype is cloned
  /// `num_members` times).
  explicit StorageSystem(const std::vector<TargetSpec>& specs);

  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  int num_targets() const { return static_cast<int>(targets_.size()); }
  StorageTarget& target(int j) { return *targets_[j]; }
  const StorageTarget& target(int j) const { return *targets_[j]; }

  EventQueue& queue() { return queue_; }
  double Now() const { return queue_.Now(); }

  /// Submits `req` to target `j`; `done` fires at completion time.
  void Submit(int j, const TargetRequest& req,
              StorageTarget::Completion done);

  /// Status-aware submission: `done` also receives the request outcome
  /// (kIoError after retry exhaustion or an unserviceable RAID group).
  void SubmitWithStatus(int j, const TargetRequest& req,
                        StorageTarget::StatusCompletion done);

  /// Sets the trace observer (or clears it with nullptr).
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Per-target capacities in bytes (the c_j of the layout problem).
  std::vector<int64_t> capacities() const;

  /// Measured utilization of target j over `elapsed` seconds:
  /// busy device-seconds / (elapsed * members).
  double MeasuredUtilization(int j, double elapsed) const;

  /// Requests submitted but not yet completed, summed over all targets
  /// (rebuild traffic excluded). Includes migration I/O; the migration
  /// throttle subtracts its own in-flight count to estimate foreground
  /// queue depth.
  uint64_t InflightRequests() const;

  /// Fault counters summed over all targets (degraded_time sums the
  /// per-target degraded intervals, so overlapping faults count once per
  /// affected target).
  FaultStats TotalFaultStats() const;

 private:
  EventQueue queue_;
  std::vector<std::unique_ptr<StorageTarget>> targets_;
  Observer observer_;
  uint64_t next_seq_ = 0;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_STORAGE_SYSTEM_H_
