#ifndef LAYOUTDB_STORAGE_DEVICE_H_
#define LAYOUTDB_STORAGE_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/io_request.h"

namespace ldb {

/// Service-time model of a single storage device (disk or SSD).
///
/// A device is a stateful black box: ServiceTime() is called once per
/// request at dispatch time, returns how long the device is busy with the
/// request, and updates internal state (head position, tracked sequential
/// streams). Devices do not queue; queueing and scheduling live in
/// StorageTarget.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Returns the busy time for `req` and advances device state.
  virtual double ServiceTime(const DeviceRequest& req) = 0;

  /// Estimated positioning cost of `req` if dispatched now, without state
  /// change. Schedulers use this to order queued requests.
  virtual double PositioningEstimate(const DeviceRequest& req) const = 0;

  /// Device capacity in bytes.
  virtual int64_t capacity_bytes() const = 0;

  /// Restores the device to its initial (post-construction) state.
  virtual void Reset() = 0;

  /// Creates an identical device in its initial state.
  virtual std::unique_ptr<BlockDevice> Clone() const = 0;

  /// Short model name, e.g. "disk-15k" or "ssd". Used as the key for
  /// calibrated cost models: devices with equal model names must have equal
  /// performance parameters.
  virtual const std::string& model_name() const = 0;

  /// Stable textual dump of every parameter that affects ServiceTime /
  /// PositioningEstimate (including capacity, which scales with the
  /// experiment). Two devices with equal ParamsText() behave identically,
  /// so the string keys persisted calibration results.
  virtual std::string ParamsText() const = 0;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_DEVICE_H_
