#ifndef LAYOUTDB_STORAGE_EVENT_QUEUE_H_
#define LAYOUTDB_STORAGE_EVENT_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

namespace ldb {

/// Discrete-event simulation core: a clock and a time-ordered callback queue.
///
/// Events scheduled at equal times fire in scheduling order (a monotone
/// sequence number breaks ties), which keeps simulations deterministic.
///
/// The queue is built not to allocate per event in steady state: the heap
/// orders small POD entries, and callbacks live in a recycled slab of
/// small-buffer slots (`Callback` stores captures up to
/// kInlineCallbackBytes inline, falling back to the heap — counted by
/// callback_heap_allocations() — only for oversized captures). Once the
/// slab has grown to the maximum number of outstanding events, scheduling
/// and running events performs no allocation at all.
class EventQueue {
 public:
  /// Inline capture capacity of Callback. Sized for the largest capture on
  /// the simulator's hot paths (trace replay captures ~72 bytes).
  static constexpr size_t kInlineCallbackBytes = 96;

  /// Move-only type-erased `void()` callable with inline small-buffer
  /// storage (the allocation-free replacement for std::function on the
  /// event path).
  class Callback {
   public:
    Callback() = default;
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback>>>
    Callback(F&& f) {  // NOLINT(runtime/explicit): callers pass lambdas
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                    alignof(Fn) <= alignof(std::max_align_t)) {
        new (storage_) Fn(std::forward<F>(f));
        ops_ = &InlineOps<Fn>::kOps;
      } else {
        *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
        ops_ = &HeapOps<Fn>::kOps;
        heap_allocations_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    Callback(Callback&& other) noexcept { MoveFrom(&other); }
    Callback& operator=(Callback&& other) noexcept {
      if (this != &other) {
        Reset();
        MoveFrom(&other);
      }
      return *this;
    }
    Callback(const Callback&) = delete;
    Callback& operator=(const Callback&) = delete;
    ~Callback() { Reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /// Invokes the callable; requires engaged.
    void operator()() { ops_->invoke(storage_); }

   private:
    friend class EventQueue;

    struct Ops {
      void (*invoke)(void* storage);
      void (*relocate)(void* dst, void* src);  ///< move into raw dst storage
      void (*destroy)(void* storage);
    };

    template <typename Fn>
    struct InlineOps {
      static void Invoke(void* s) { (*static_cast<Fn*>(s))(); }
      static void Relocate(void* dst, void* src) {
        new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      }
      static void Destroy(void* s) { static_cast<Fn*>(s)->~Fn(); }
      static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
    };

    template <typename Fn>
    struct HeapOps {
      static Fn* Ptr(void* s) { return *static_cast<Fn**>(s); }
      static void Invoke(void* s) { (*Ptr(s))(); }
      static void Relocate(void* dst, void* src) {
        *static_cast<Fn**>(dst) = Ptr(src);
      }
      static void Destroy(void* s) { delete Ptr(s); }
      static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
    };

    void MoveFrom(Callback* other) {
      if (other->ops_ != nullptr) {
        other->ops_->relocate(storage_, other->storage_);
        ops_ = other->ops_;
        other->ops_ = nullptr;
      }
    }
    void Reset() {
      if (ops_ != nullptr) {
        ops_->destroy(storage_);
        ops_ = nullptr;
      }
    }

    static std::atomic<uint64_t> heap_allocations_;

    const Ops* ops_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[kInlineCallbackBytes];
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulation time in seconds.
  double Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when` (must be >= Now()).
  void ScheduleAt(double when, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, Callback cb);

  /// Runs events until the queue is empty. Returns the final clock value.
  double RunUntilIdle();

  /// Runs events with time <= `deadline`; the clock ends at
  /// min(deadline, time of last event). Returns the final clock value.
  double RunUntil(double deadline);

  /// True if no events are pending.
  bool Empty() const { return events_.empty(); }

  /// Number of events executed so far (for simulator throughput metrics).
  uint64_t events_executed() const { return events_executed_; }

  /// Size of the callback slab: the maximum number of simultaneously
  /// outstanding events seen so far. Stable slab size across a run means
  /// the steady-state path did not allocate.
  size_t callback_pool_slots() const { return pool_.size(); }

  /// Process-wide count of Callback captures too large for the inline
  /// buffer (each one costs a heap allocation). Zero across a simulation
  /// proves the event path stayed allocation-free.
  static uint64_t callback_heap_allocations() {
    return Callback::heap_allocations_.load(std::memory_order_relaxed);
  }

 private:
  /// Heap entry: plain data; the callback lives in pool_[slot].
  struct PendingEvent {
    double when;
    uint64_t seq;
    uint32_t slot;
  };
  struct Later {
    bool operator()(const PendingEvent& a, const PendingEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops the front event, releases its slot, and invokes it.
  void RunOne();

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later> events_;
  std::vector<Callback> pool_;         ///< slot-addressed callback slab
  std::vector<uint32_t> free_slots_;   ///< recycled pool_ indices
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_EVENT_QUEUE_H_
