#ifndef LAYOUTDB_STORAGE_EVENT_QUEUE_H_
#define LAYOUTDB_STORAGE_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ldb {

/// Discrete-event simulation core: a clock and a time-ordered callback queue.
///
/// Events scheduled at equal times fire in scheduling order (a monotone
/// sequence number breaks ties), which keeps simulations deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulation time in seconds.
  double Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when` (must be >= Now()).
  void ScheduleAt(double when, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, Callback cb);

  /// Runs events until the queue is empty. Returns the final clock value.
  double RunUntilIdle();

  /// Runs events with time <= `deadline`; the clock ends at
  /// min(deadline, time of last event). Returns the final clock value.
  double RunUntil(double deadline);

  /// True if no events are pending.
  bool Empty() const { return events_.empty(); }

  /// Number of events executed so far (for simulator throughput metrics).
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    double when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace ldb

#endif  // LAYOUTDB_STORAGE_EVENT_QUEUE_H_
