// workload_fit — runs the paper's workload-characterization pipeline on the
// simulated testbed and emits a layoutdb problem file.
//
// This is the front half of the advisor toolchain: it builds a TPC-H (or
// consolidated TPC-H + TPC-C) database on simulated disks, runs the chosen
// workload under the SEE baseline with tracing enabled, fits Rome-style
// workload descriptions from the trace (Section 5.1), and writes the
// resulting layout problem to stdout — ready for `layout_advisor`:
//
//   build/tools/workload_fit --workload=olap8-63 > problem.txt
//   build/tools/layout_advisor problem.txt --compare-see
//
// Options:
//   --workload=olap1-21|olap1-63|olap8-63|consolidation   (default olap1-63)
//   --scale=<f>    database/device scale (default 0.05)
//   --seed=<n>     workload shuffle / simulation seed (default 7)
//   --disks=<n>    number of single-disk targets (default 4)
//   --calibration-cache=<dir>   persistent device cost-model cache

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "core/harness.h"
#include "util/table.h"
#include "core/problem_io.h"
#include "workload/catalog.h"
#include "workload/spec.h"

int main(int argc, char** argv) {
  using namespace ldb;
  std::string workload = "olap1-63";
  double scale = 0.05;
  uint64_t seed = 7;
  int disks = 4;
  CalibrationOptions calibration;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--workload=", 11) == 0) {
      workload = argv[a] + 11;
    } else if (std::strncmp(argv[a], "--scale=", 8) == 0) {
      scale = std::atof(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(argv[a] + 7));
    } else if (std::strncmp(argv[a], "--disks=", 8) == 0) {
      disks = std::atoi(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--calibration-cache=", 20) == 0) {
      calibration.cache_dir = argv[a] + 20;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[a]);
      return 2;
    }
  }
  if (scale <= 0 || disks <= 0) {
    std::fprintf(stderr, "bad scale/disks\n");
    return 2;
  }

  const bool consolidation = workload == "consolidation";
  Catalog catalog =
      consolidation
          ? Catalog::Merge(Catalog::TpcH(scale), Catalog::TpcC(scale), "",
                           "C_")
          : Catalog::TpcH(scale);

  std::vector<RigTargetDef> targets;
  for (int j = 0; j < disks; ++j) {
    targets.push_back(RigTargetDef{StrFormat("disk%d", j)});
  }
  auto rig = ExperimentRig::Create(catalog, targets, scale, seed,
                                   std::move(calibration));
  if (!rig.ok()) {
    std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
    return 1;
  }

  Result<OlapSpec> olap = Status::NotFound("unset");
  Result<OltpSpec> oltp = Status::NotFound("unset");
  if (workload == "olap1-21") {
    olap = MakeOlapSpec(rig->catalog(), 1, 1, seed);
  } else if (workload == "olap1-63") {
    olap = MakeOlapSpec(rig->catalog(), 3, 1, seed);
  } else if (workload == "olap8-63") {
    olap = MakeOlapSpec(rig->catalog(), 3, 8, seed);
  } else if (consolidation) {
    olap = MakeOlapSpec(rig->catalog(), 1, 1, seed);
    oltp = MakeOltpSpec(rig->catalog(), "C_", 9, 5.0);
    if (!oltp.ok()) {
      std::fprintf(stderr, "oltp: %s\n", oltp.status().ToString().c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }
  if (!olap.ok()) {
    std::fprintf(stderr, "spec: %s\n", olap.status().ToString().c_str());
    return 1;
  }

  const Layout see = Layout::StripeEverythingEverywhere(
      rig->catalog().num_objects(), rig->num_targets());
  auto workloads =
      rig->FitWorkloads(see, &*olap, oltp.ok() ? &*oltp : nullptr);
  if (!workloads.ok()) {
    std::fprintf(stderr, "fit: %s\n",
                 workloads.status().ToString().c_str());
    return 1;
  }
  auto problem = rig->MakeProblem(std::move(workloads).value());
  if (!problem.ok()) {
    std::fprintf(stderr, "problem: %s\n",
                 problem.status().ToString().c_str());
    return 1;
  }
  std::fputs(FormatProblemText(*problem).c_str(), stdout);
  std::fprintf(stderr, "fitted %d objects from %s at scale %.3g\n",
               problem->num_objects(), workload.c_str(), scale);
  return 0;
}
