// layout_advisor — the standalone database storage layout advisor CLI,
// the deployment mode the paper proposes (Section 8: "the technique could
// be deployed as a standalone storage layout advisor, whose output would
// guide the configuration of both the database system and the storage
// system").
//
// Usage:
//   layout_advisor <problem-file> [--no-regularize] [--seeds=<n>]
//                  [--compare-see] [--threads=<n>] [--gradient=<mode>]
//                  [--calibration-cache=<dir>]
//                  [--faults=<spec>] [--replan]
//                  [--migrate] [--migrate-throttle=<MB/s>]
//                  [--autopilot[=<spec>]] [--drift-threshold=<x>]
//                  [--autopilot-duration=<s>] [--scenario]
//                  [--journal=<path>] [--resume] [--journal-crash=<spec>]
//                  [--backend=sim|file] [--backend-dir=<dir>]
//
// --faults=<spec> parses a deterministic fault plan (see
// src/storage/fault.h for the grammar, e.g.
// "t=1,target=0,member=0,kind=fail") and reports the surviving health of
// every target. A `faults` directive in the problem file is used when the
// flag is absent (the flag takes precedence). With --replan, the advisor additionally runs
// failure-aware re-layout: the recommended layout is replanned around the
// failed/derated targets and the migration plan (bytes to move) is
// printed. --replan without --faults replans against all-healthy targets
// and must be a no-op (printed as such).
//
// --threads=<n> sets the solver's evaluation-engine parallelism and the
// device-calibration parallelism (0 = one thread per hardware core). The
// recommended layout is identical for every thread count.
//
// --gradient=<analytic|fd> selects the solver's gradient engine: the
// closed-form gradient through the cost tables (default; falls back to
// finite differences when a problem carries no analytic support) or the
// central finite-difference baseline kept for differential testing.
//
// --migrate simulates carrying the recommendation out *online*: the
// problem's targets are rebuilt as simulated devices, a foreground
// workload synthesized from the fitted descriptions keeps running, and a
// chunk-level migration executor copies every moving object from the SEE
// baseline layout to the recommended one in the background
// (src/core/migrate.h). --migrate-throttle=<MB/s> rate-limits the copy
// I/O; composing with --faults injects the fault plan into the same run,
// so a target can die mid-copy (the executor rolls back or freezes
// routing, and the report says which).
//
// --autopilot engages the closed-loop layout autopilot on the simulated
// rebuild of the problem's targets: the SEE baseline is deployed, a
// foreground synthesized from the fitted descriptions runs, and the
// monitor/drift/gate loop re-advises and migrates online (src/core/
// autopilot.h). The optional <spec> uses the ParseAutopilotSpec grammar
// ("interval=2;threshold=0.25,trip=2"); it overrides any `autopilot`
// directive in the problem file. --drift-threshold=<x> (x > 0, `inf`
// disables tripping) overrides the spec's threshold. Composes with
// --faults (same system, so a target can die mid-loop) and
// --migrate-throttle (rate-limits autopilot-started copies and prices the
// gate). --autopilot-duration=<s> sets the simulated foreground duration.
//
// --scenario plays the problem file's `scenario` directive (a declarative
// time-varying multi-tenant workload; see src/scenario/scenario.h for the
// grammar) against the simulated rebuild of the targets with the SEE
// baseline deployed: statically on its own, or under the closed autopilot
// loop when combined with --autopilot. Composes with --faults /
// `faults` directive (same simulated system).
//
// --journal=<path> makes the migration/autopilot control plane durable: a
// crash-recoverable WAL (src/util/wal.h) records every migration journal
// entry before it takes effect, plus autopilot intent/checkpoint records.
// Requires --migrate or --autopilot (with or without --scenario). --resume
// recovers the journal and continues: a --migrate run resumes the
// recorded migration from its last committed chunk; an --autopilot run
// deploys the last checkpointed (or committed-but-uncheckpointed) layout
// and drift reference. Resuming a journal recorded for a different
// problem or plan is refused with a digest diagnostic. --journal-crash=
// <spec> arms deterministic crash injection on the journal writer
// (grammar "after=N[,torn=K]" / "syncs=S", see ParseWalCrashPolicy); a
// fired crash exits with status 3 and prints the resume command.
//
// --backend=<sim|file> selects the execution backend for migration data
// (src/io/backend.h). `sim` (the default) keeps everything on the event-
// queue simulator, bit-identical to builds before the seam existed.
// `file` opens a real-I/O FileBackend under --backend-dir=<dir> (one
// `target-NNN.dat` file per target, O_DIRECT when the filesystem supports
// it, buffered + a warning otherwise): migration chunks are then *really
// copied* between the files while the simulator still drives timing, and
// the run ends by re-reading every object byte through the final routing
// and checking it against the seeded pattern. Requires --migrate or
// --autopilot; composes with --journal/--resume — a killed real-file
// migration resumes against the same directory and recopies only what the
// journal does not pin as committed.
//
// --calibration-cache=<dir> persists calibrated device cost models across
// invocations (keyed by device parameters + calibration options), so
// repeated runs skip the Section 5.2.2 measurement entirely.
//
// The problem file describes objects, workloads, targets and constraints;
// see src/core/problem_io.h for the format and examples/data/ for a
// sample.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <cmath>
#include <cstdlib>

#include "core/advisor.h"
#include "core/autopilot.h"
#include "core/baselines.h"
#include "core/journal.h"
#include "core/migrate.h"
#include "core/problem_io.h"
#include "core/replan.h"
#include "io/file_backend.h"
#include "monitor/autopilot_spec.h"
#include "scenario/sim.h"
#include "storage/fault.h"
#include "util/wal.h"

int main(int argc, char** argv) {
  using namespace ldb;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <problem-file> [--no-regularize] [--seeds=<n>] "
                 "[--compare-see] [--threads=<n>] [--gradient=<analytic|fd>] "
                 "[--calibration-cache=<dir>] [--faults=<spec>] [--replan] "
                 "[--migrate] [--migrate-throttle=<MB/s>] "
                 "[--autopilot[=<spec>]] [--scenario] "
                 "[--journal=<path>] [--resume] [--journal-crash=<spec>] "
                 "[--backend=sim|file] [--backend-dir=<dir>]\n",
                 argv[0]);
    return 2;
  }
  AdvisorOptions options;
  ProblemIoOptions io_options;
  bool compare_see = false;
  bool replan = false;
  bool migrate = false;
  bool autopilot = false;
  bool scenario = false;
  bool has_autopilot_spec = false;
  bool has_drift_threshold = false;
  double migrate_throttle_mbps = 0.0;
  double drift_threshold = 0.0;
  double autopilot_duration_s = 30.0;
  std::string autopilot_spec;
  std::string faults_spec;
  std::string journal_path;
  std::string journal_crash_spec;
  bool resume = false;
  bool backend_file = false;
  std::string backend_dir;
  std::string path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--no-regularize") == 0) {
      options.regularize = false;
    } else if (std::strncmp(argv[a], "--seeds=", 8) == 0) {
      options.extra_random_seeds = std::atoi(argv[a] + 8);
    } else if (std::strcmp(argv[a], "--compare-see") == 0) {
      compare_see = true;
    } else if (std::strncmp(argv[a], "--threads=", 10) == 0) {
      options.solver.num_threads = std::atoi(argv[a] + 10);
      io_options.calibration.num_threads = options.solver.num_threads;
    } else if (std::strncmp(argv[a], "--gradient=", 11) == 0) {
      const char* mode = argv[a] + 11;
      if (std::strcmp(mode, "analytic") == 0) {
        options.solver.gradient_mode = GradientMode::kAnalytic;
      } else if (std::strcmp(mode, "fd") == 0) {
        options.solver.gradient_mode = GradientMode::kFd;
      } else {
        std::fprintf(stderr,
                     "--gradient must be 'analytic' or 'fd', got '%s'\n",
                     mode);
        return 2;
      }
    } else if (std::strncmp(argv[a], "--calibration-cache=", 20) == 0) {
      io_options.calibration.cache_dir = argv[a] + 20;
    } else if (std::strncmp(argv[a], "--faults=", 9) == 0) {
      faults_spec = argv[a] + 9;
    } else if (std::strcmp(argv[a], "--replan") == 0) {
      replan = true;
    } else if (std::strcmp(argv[a], "--migrate") == 0) {
      migrate = true;
    } else if (std::strncmp(argv[a], "--migrate-throttle=", 19) == 0) {
      migrate = true;
      migrate_throttle_mbps = std::atof(argv[a] + 19);
      if (migrate_throttle_mbps <= 0.0) {
        std::fprintf(stderr, "--migrate-throttle needs a rate > 0 (MB/s)\n");
        return 2;
      }
    } else if (std::strncmp(argv[a], "--autopilot=", 12) == 0) {
      autopilot = true;
      has_autopilot_spec = true;
      autopilot_spec = argv[a] + 12;
    } else if (std::strcmp(argv[a], "--autopilot") == 0) {
      autopilot = true;
    } else if (std::strcmp(argv[a], "--scenario") == 0) {
      scenario = true;
    } else if (std::strncmp(argv[a], "--journal=", 10) == 0) {
      journal_path = argv[a] + 10;
      if (journal_path.empty()) {
        std::fprintf(stderr, "--journal needs a non-empty path\n");
        return 2;
      }
    } else if (std::strcmp(argv[a], "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(argv[a], "--journal-crash=", 16) == 0) {
      journal_crash_spec = argv[a] + 16;
    } else if (std::strncmp(argv[a], "--backend=", 10) == 0) {
      const char* b = argv[a] + 10;
      if (std::strcmp(b, "sim") == 0) {
        backend_file = false;
      } else if (std::strcmp(b, "file") == 0) {
        backend_file = true;
      } else {
        std::fprintf(stderr, "--backend must be 'sim' or 'file', got '%s'\n",
                     b);
        return 2;
      }
    } else if (std::strncmp(argv[a], "--backend-dir=", 14) == 0) {
      backend_dir = argv[a] + 14;
    } else if (std::strncmp(argv[a], "--autopilot-duration=", 21) == 0) {
      autopilot = true;
      autopilot_duration_s = std::atof(argv[a] + 21);
      if (!(autopilot_duration_s > 0.0) ||
          !std::isfinite(autopilot_duration_s)) {
        std::fprintf(stderr,
                     "--autopilot-duration needs a finite duration > 0 (s)\n");
        return 2;
      }
    } else if (std::strncmp(argv[a], "--drift-threshold=", 18) == 0) {
      autopilot = true;
      has_drift_threshold = true;
      char* end = nullptr;
      drift_threshold = std::strtod(argv[a] + 18, &end);
      if (end == argv[a] + 18 || *end != '\0' || std::isnan(drift_threshold) ||
          drift_threshold <= 0.0) {
        // Mirrors the spec parser: > 0 required, inf allowed (disables
        // tripping), nan and garbage rejected.
        std::fprintf(stderr,
                     "--drift-threshold: threshold must be > 0 "
                     "(inf disables tripping), got '%s'\n",
                     argv[a] + 18);
        return 2;
      }
    } else if (argv[a][0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", argv[a]);
      return 2;
    } else {
      path = argv[a];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "no problem file given\n");
    return 2;
  }
  // Journal flag consistency, ParseFaultPlan-style: each misuse names the
  // offending flag and what it needs.
  WalCrashPolicy journal_crash;
  if (resume && journal_path.empty()) {
    std::fprintf(stderr,
                 "--resume requires --journal=<path> (there is no journal "
                 "to recover without one)\n");
    return 2;
  }
  if (!journal_crash_spec.empty() && journal_path.empty()) {
    std::fprintf(stderr,
                 "--journal-crash requires --journal=<path> (crash "
                 "injection targets the journal writer)\n");
    return 2;
  }
  if (!journal_path.empty() && !migrate && !autopilot) {
    std::fprintf(stderr,
                 "--journal requires --migrate or --autopilot (only the "
                 "migration/autopilot control plane journals state)\n");
    return 2;
  }
  if (!journal_crash_spec.empty()) {
    auto parsed = ParseWalCrashPolicy(journal_crash_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--journal-crash: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    journal_crash = *parsed;
  }
  if (migrate && autopilot && !journal_path.empty()) {
    std::fprintf(stderr,
                 "--journal cannot serve --migrate and --autopilot in one "
                 "run (two control planes, one journal); pick one\n");
    return 2;
  }
  if (backend_file && backend_dir.empty()) {
    std::fprintf(stderr,
                 "--backend=file requires --backend-dir=<dir> (where the "
                 "target files live)\n");
    return 2;
  }
  if (!backend_dir.empty() && !backend_file) {
    std::fprintf(stderr,
                 "--backend-dir only applies with --backend=file (the sim "
                 "backend has no files)\n");
    return 2;
  }
  if (backend_file && !migrate && !autopilot) {
    std::fprintf(stderr,
                 "--backend=file requires --migrate or --autopilot (the "
                 "real data plane carries migration copies)\n");
    return 2;
  }

  auto loaded = LoadProblemFile(path, io_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %d objects onto %d targets from %s\n",
              loaded->problem.num_objects(), loaded->problem.num_targets(),
              path.c_str());

  LayoutAdvisor advisor(options);
  auto result = advisor.Recommend(loaded->problem);
  if (!result.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", FormatAdvisorReport(loaded->problem, *result).c_str());

  if (compare_see) {
    const TargetModel model = loaded->problem.MakeTargetModel();
    const Layout see = SeeBaseline(loaded->problem);
    std::printf(
        "SEE baseline estimated max utilization: %.1f%% (optimized: "
        "%.1f%%)\n",
        100 * model.MaxUtilization(loaded->problem.workloads, see),
        100 * result->max_utilization_final);
  }

  if (!faults_spec.empty() || loaded->has_faults || replan || migrate ||
      autopilot || scenario) {
    TargetHealth health =
        TargetHealth::Healthy(loaded->problem.num_targets());
    FaultPlan plan;
    if (!faults_spec.empty() || loaded->has_faults) {
      if (!faults_spec.empty()) {
        // The CLI flag takes precedence over a `faults` directive.
        auto parsed = ParseFaultPlan(faults_spec);
        if (!parsed.ok()) {
          std::fprintf(stderr, "--faults: %s\n",
                       parsed.status().ToString().c_str());
          return 1;
        }
        plan = *parsed;
      } else {
        plan = loaded->faults;
      }
      health = HealthFromFaultPlan(plan, loaded->problem.targets);
      std::printf("Fault plan: %s\n", FaultPlanToString(plan).c_str());
      for (int j = 0; j < loaded->problem.num_targets(); ++j) {
        if (health.IsFailed(j)) {
          std::printf("  target %-12s FAILED\n",
                      loaded->problem.targets[j].name.c_str());
        } else if (health.derate[j] < 1.0) {
          std::printf("  target %-12s derated to %.0f%% of healthy\n",
                      loaded->problem.targets[j].name.c_str(),
                      100 * health.derate[j]);
        }
      }
    }
    if (replan) {
      ReplanOptions ropts;
      ropts.solver = options.solver;
      auto replanned = ReplanAfterFailure(loaded->problem,
                                          result->final_layout, health,
                                          ropts);
      if (!replanned.ok()) {
        std::fprintf(stderr, "replan: %s\n",
                     replanned.status().ToString().c_str());
        return 1;
      }
      if (!replanned->replanned) {
        std::printf(
            "Replan: all targets healthy; layout unchanged, 0 bytes to "
            "move\n");
      } else {
        std::printf(
            "Replan: %d object(s) move, %.1f MB migration; estimated max "
            "effective utilization %.1f%% (was %.1f%%)\n",
            replanned->migration.objects_moved,
            replanned->migration.total_bytes / (1024.0 * 1024.0),
            100 * replanned->max_utilization,
            replanned->previous_max_utilization > 1e11
                ? 999.9
                : 100 * replanned->previous_max_utilization);
      }
    }
    std::unique_ptr<FileBackend> file_backend;
    if (backend_file) {
      FileBackendOptions fopts;
      fopts.dir = backend_dir;
      // Migration runs keep two layouts' extents live at once (source and
      // destination epochs), so each file is provisioned at 2x capacity.
      fopts.dual_epoch = true;
      for (const auto& t : loaded->problem.targets) {
        fopts.capacity_bytes.push_back(t.capacity_bytes);
      }
      auto fb = FileBackend::Open(fopts);
      if (!fb.ok()) {
        std::fprintf(stderr, "--backend=file: %s\n",
                     fb.status().ToString().c_str());
        return 1;
      }
      file_backend = std::move(*fb);
      const BackendGeometry& g = file_backend->geometry();
      std::printf(
          "Real-I/O backend: %d target file(s) under %s (%s, block %lld "
          "B)\n",
          g.num_targets, backend_dir.c_str(),
          g.direct_io ? "O_DIRECT" : "buffered",
          static_cast<long long>(g.logical_block_bytes));
    }
    if (migrate) {
      MigrateOptions mopts;
      mopts.data_backend = file_backend.get();
      if (migrate_throttle_mbps > 0.0) {
        mopts.bandwidth_bytes_per_s = migrate_throttle_mbps * 1024.0 * 1024.0;
      }
      mopts.max_bg_share = 0.5;
      mopts.journal_path = journal_path;
      mopts.journal_crash = journal_crash;
      mopts.resume = resume;
      const Layout see = SeeBaseline(loaded->problem);
      auto sim = SimulateProblemMigration(loaded->problem, see,
                                          result->final_layout, plan, mopts);
      if (!sim.ok()) {
        std::fprintf(stderr, "--migrate: %s\n",
                     sim.status().ToString().c_str());
        return 1;
      }
      const double duration =
          sim->stats.end_time >= 0.0 && sim->stats.start_time >= 0.0
              ? sim->stats.end_time - sim->stats.start_time
              : -1.0;
      std::printf(
          "Migration (SEE -> recommended): %s in %.2f s simulated; "
          "%lld/%lld chunks committed (%lld recopied), %.1f MB copied, "
          "%zu journal records\n",
          MigrationOutcomeName(sim->outcome), duration,
          static_cast<long long>(sim->stats.chunks_committed),
          static_cast<long long>(sim->stats.chunks_total),
          static_cast<long long>(sim->stats.chunks_recopied),
          sim->stats.bytes_written / (1024.0 * 1024.0),
          sim->journal.size());
      if (sim->failed_target >= 0 || !sim->failure_reason.empty()) {
        std::printf("  failure: %s\n", sim->failure_reason.c_str());
      }
      std::printf(
          "  foreground during migration: %llu requests, mean %.2f ms, "
          "p99 %.2f ms\n",
          static_cast<unsigned long long>(sim->fg_requests),
          1e3 * sim->fg_mean_s, 1e3 * sim->fg_p99_s);
      std::printf("  every byte readable at end: %s\n",
                  sim->readable.ok() ? "yes"
                                     : sim->readable.ToString().c_str());
      if (sim->real_backend) {
        std::printf(
            "  every object byte readable on real files: %s (%.1f MB "
            "verified)\n",
            sim->real_readable.ok() ? "yes"
                                    : sim->real_readable.ToString().c_str(),
            sim->real_bytes_verified / (1024.0 * 1024.0));
      }
      for (const std::string& s : sim->skipped_faults) {
        std::printf("  skipped fault: %s\n", s.c_str());
      }
      if (!journal_path.empty()) {
        std::printf(
            "  journal: %lld records (%lld recovered), %lld bytes at %s\n",
            static_cast<long long>(sim->journal_records),
            static_cast<long long>(sim->resumed_records),
            static_cast<long long>(sim->journal_bytes), journal_path.c_str());
        if (sim->journal_crashed) {
          std::printf(
              "  journal crash injected (%s); migration frozen pre-crash "
              "state is durable\n"
              "  resume with: %s %s --migrate --journal=%s --resume%s%s\n",
              sim->journal_error.c_str(), argv[0], path.c_str(),
              journal_path.c_str(),
              backend_file ? " --backend=file --backend-dir=" : "",
              backend_file ? backend_dir.c_str() : "");
          return 3;
        }
      }
      if (sim->real_backend && !sim->real_readable.ok()) return 1;
    }
    if (autopilot || scenario) {
      AutopilotOptions aopts;
      if (has_autopilot_spec) {
        auto cfg = ParseAutopilotSpec(autopilot_spec);
        if (!cfg.ok()) {
          std::fprintf(stderr, "--autopilot: %s\n",
                       cfg.status().ToString().c_str());
          return 2;
        }
        aopts.config = *cfg;
      } else if (loaded->has_autopilot) {
        aopts.config = loaded->autopilot;
      }
      if (has_drift_threshold) {
        aopts.config.drift.threshold = drift_threshold;
      }
      if (migrate_throttle_mbps > 0.0) {
        aopts.migrate.bandwidth_bytes_per_s =
            migrate_throttle_mbps * 1024.0 * 1024.0;
      }
      aopts.migrate.max_bg_share = 0.5;
      aopts.migrate.data_backend = file_backend.get();
      aopts.advisor = options;
      aopts.journal_path = journal_path;
      aopts.journal_crash = journal_crash;
      aopts.resume = resume;
      const Layout see = SeeBaseline(loaded->problem);
      if (scenario) {
        if (!loaded->has_scenario) {
          std::fprintf(stderr,
                       "--scenario: the problem file has no scenario "
                       "directive\n");
          return 2;
        }
        ScenarioPlayerOptions popts;
        if (resume) {
          // Read-only peek at the journal's scenario clock so the player
          // restarts where the dead process left off; the autopilot's own
          // recovery (layout, drift reference) happens inside the run.
          auto rec = RecoverControlState(journal_path);
          if (!rec.ok()) {
            std::fprintf(stderr, "--resume: %s\n",
                         rec.status().ToString().c_str());
            return 1;
          }
          if (rec->has_scenario_position) {
            popts.start_offset_s = rec->scenario_position_s;
            std::printf("Resuming scenario at t=%.2f s (journal clock)\n",
                        rec->scenario_position_s);
          }
        }
        auto out = SimulateProblemScenario(
            loaded->problem, see, loaded->scenario, plan,
            autopilot ? &aopts : nullptr, popts);
        if (!out.ok()) {
          std::fprintf(stderr, "--scenario: %s\n",
                       out.status().ToString().c_str());
          return 1;
        }
        std::printf(
            "Scenario (%s, %s): %llu arrivals, %llu requests submitted "
            "(%llu shed), %llu completed over %.2f s simulated\n",
            ScenarioToString(loaded->scenario).c_str(),
            autopilot ? "autopilot" : "static",
            static_cast<unsigned long long>(out->play.arrivals),
            static_cast<unsigned long long>(out->play.requests),
            static_cast<unsigned long long>(out->play.shed),
            static_cast<unsigned long long>(out->run.total_requests),
            out->run.elapsed_seconds);
        for (size_t j = 0; j < out->run.utilization.size(); ++j) {
          std::printf("  target %-12s measured utilization %.1f%%\n",
                      loaded->problem.targets[j].name.c_str(),
                      100 * out->run.utilization[j]);
        }
        if (out->has_autopilot) {
          for (const AutopilotDecision& d : out->autopilot.decisions) {
            std::printf(
                "  t=%7.2f drift=%.3f max-util %.1f%% -> %.1f%%, %.1f MB "
                "to move: %s\n",
                d.time, d.score, 100 * d.current_max_util,
                100 * d.advised_max_util,
                d.migration_bytes / (1024.0 * 1024.0), d.note.c_str());
          }
          std::printf(
              "  migrations: %d started, %d completed, %d suppressed by "
              "gate; %.1f MB copied\n",
              out->autopilot.migrations_started,
              out->autopilot.migrations_completed,
              out->autopilot.migrations_suppressed,
              out->autopilot.bytes_copied / (1024.0 * 1024.0));
          if (out->autopilot.real_backend) {
            std::printf(
                "  every object byte readable on real files: %s (%.1f MB "
                "verified)\n",
                out->autopilot.real_readable.ok()
                    ? "yes"
                    : out->autopilot.real_readable.ToString().c_str(),
                out->autopilot.real_bytes_verified / (1024.0 * 1024.0));
          }
          if (!journal_path.empty()) {
            std::printf("  journal: %lld records, %lld bytes at %s%s\n",
                        static_cast<long long>(out->autopilot.journal_records),
                        static_cast<long long>(out->autopilot.journal_bytes),
                        journal_path.c_str(),
                        out->autopilot.resumed_from_journal
                            ? " (resumed from journal)"
                            : "");
            if (out->autopilot.journal_crashed) {
              std::printf(
                  "  journal crash injected; control plane frozen, durable "
                  "state kept\n"
                  "  resume with: %s %s --scenario --autopilot "
                  "--journal=%s --resume\n",
                  argv[0], path.c_str(), journal_path.c_str());
              return 3;
            }
          }
          if (out->autopilot.real_backend &&
              !out->autopilot.real_readable.ok()) {
            return 1;
          }
        }
        return 0;
      }
      auto ap = SimulateProblemAutopilot(loaded->problem, see, plan, aopts,
                                         autopilot_duration_s);
      if (!ap.ok()) {
        std::fprintf(stderr, "--autopilot: %s\n",
                     ap.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "Autopilot (%s): %llu ticks, %llu monitored completions over "
          "%.2f s simulated\n",
          AutopilotConfigToString(aopts.config).c_str(),
          static_cast<unsigned long long>(ap->ticks),
          static_cast<unsigned long long>(ap->monitor_events),
          ap->run.elapsed_seconds);
      for (const AutopilotDecision& d : ap->decisions) {
        std::printf(
            "  t=%7.2f drift=%.3f max-util %.1f%% -> %.1f%%, %.1f MB to "
            "move: %s\n",
            d.time, d.score, 100 * d.current_max_util,
            100 * d.advised_max_util, d.migration_bytes / (1024.0 * 1024.0),
            d.note.c_str());
      }
      std::printf(
          "  migrations: %d started, %d completed, %d suppressed by gate, "
          "%d rolled back, %d frozen; %.1f MB copied\n",
          ap->migrations_started, ap->migrations_completed,
          ap->migrations_suppressed, ap->migrations_rolled_back,
          ap->migrations_aborted, ap->bytes_copied / (1024.0 * 1024.0));
      std::printf(
          "  foreground: %llu requests, mean %.2f ms; final drift score "
          "%.3f\n",
          static_cast<unsigned long long>(ap->fg_requests),
          1e3 * ap->fg_mean_latency_s, ap->final_drift_score);
      if (ap->real_backend) {
        std::printf(
            "  every object byte readable on real files: %s (%.1f MB "
            "verified)\n",
            ap->real_readable.ok() ? "yes"
                                   : ap->real_readable.ToString().c_str(),
            ap->real_bytes_verified / (1024.0 * 1024.0));
      }
      for (const std::string& s : ap->skipped_faults) {
        std::printf("  skipped fault: %s\n", s.c_str());
      }
      if (!journal_path.empty()) {
        std::printf("  journal: %lld records, %lld bytes at %s%s\n",
                    static_cast<long long>(ap->journal_records),
                    static_cast<long long>(ap->journal_bytes),
                    journal_path.c_str(),
                    ap->resumed_from_journal ? " (resumed from journal)" : "");
        if (ap->journal_crashed) {
          std::printf(
              "  journal crash injected; control plane frozen, durable "
              "state kept\n"
              "  resume with: %s %s --autopilot --journal=%s --resume\n",
              argv[0], path.c_str(), journal_path.c_str());
          return 3;
        }
      }
      if (ap->real_backend && !ap->real_readable.ok()) return 1;
    }
  }
  return 0;
}
