#!/usr/bin/env python3
"""Append bench --json results to a perf-trajectory file.

The benches emit a JSON array of result rows (``--json`` to stdout,
``--json=<path>`` to a file). This script wraps one such array together
with the bench name, the git revision, and a UTC timestamp, and appends
the entry to a trajectory file (default ``BENCH_solver.json``) that is
checked in — so solver speedups are tracked across PRs instead of being
re-measured from scratch whenever someone asks "did we regress?".

Usage:
    ./build/bench/bench_fig19_opttime --row=4xconsolidation \
        --skip-baseline --json | tools/bench_record.py \
        --bench bench_fig19_opttime
    tools/bench_record.py --bench bench_micro --input micro.json \
        --note "after trilinear kernel specialization"

The trajectory file is a JSON array of entries:
    {"bench": ..., "recorded_utc": ..., "git_rev": ...,
     "note": ...,  # optional
     "rows": [...]}  # the bench's rows, verbatim

With ``--compare-last``, after appending the script also diffs the new
rows against the previous recorded entry of the same bench: rows are
matched by their ``row`` (or ``name``) field and every shared numeric
field is reported as a relative delta. This is how the fleet-scale sweep
(``bench_fleet``) is tracked — solve seconds and quality-vs-flat per
(N, M) row across PRs.

Only the Python standard library is used.
"""

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_rev():
    try:
        out = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def extract_rows(text):
    """Parses the bench's JSON row array, tolerating the human-readable
    table the benches print before it when --json targets stdout (the
    table itself contains brackets — [ok], [unmatched] — so only
    line-initial '[' positions are candidate array starts)."""
    pos = 0
    candidates = []
    for line in text.splitlines(keepends=True):
        if line.lstrip().startswith(("[", "{")):
            stripped = line.lstrip()
            candidates.append(pos + len(line) - len(stripped))
        pos += len(line)
    for start in reversed(candidates):
        try:
            rows = json.loads(text[start:])
        except json.JSONDecodeError:
            continue
        if isinstance(rows, list):
            return rows
        # Google Benchmark --benchmark_format=json (bench_micro): an
        # object whose "benchmarks" array holds the per-kernel rows.
        if isinstance(rows, dict) and isinstance(rows.get("benchmarks"),
                                                 list):
            return rows["benchmarks"]
    raise ValueError("no JSON array found in input")


def row_key(row):
    return row.get("row") or row.get("name")


def compare_entries(prev_rows, rows):
    """Relative deltas of every shared numeric field between two row sets
    matched by name. Returns printable lines."""
    prev_by_key = {row_key(r): r for r in prev_rows if row_key(r)}
    lines = []
    for row in rows:
        key = row_key(row)
        prev = prev_by_key.get(key)
        if prev is None:
            lines.append(f"  {key}: new row")
            continue
        deltas = []
        for field, value in row.items():
            old = prev.get(field)
            if (isinstance(value, (int, float)) and not isinstance(value, bool)
                    and isinstance(old, (int, float))
                    and not isinstance(old, bool)):
                if old == value:
                    continue
                rel = (value - old) / abs(old) if old else float("inf")
                deltas.append(f"{field} {old:g} -> {value:g} ({rel:+.1%})")
        lines.append(f"  {key}: " + ("; ".join(deltas) if deltas
                                     else "unchanged"))
    return lines


def main():
    parser = argparse.ArgumentParser(
        description="append bench --json output to a perf-trajectory file")
    parser.add_argument("--bench", required=True,
                        help="bench name, e.g. bench_fig19_opttime")
    parser.add_argument("--input", default="-",
                        help="bench JSON output (default: stdin)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_solver.json"),
                        help="trajectory file to append to")
    parser.add_argument("--note", default=None,
                        help="optional free-form context for this entry")
    parser.add_argument("--compare-last", action="store_true",
                        help="after appending, diff against the previous "
                             "entry of the same bench (rows matched by "
                             "'row'/'name')")
    args = parser.parse_args()

    text = (sys.stdin.read() if args.input == "-"
            else Path(args.input).read_text())
    rows = extract_rows(text)

    out_path = Path(args.out)
    trajectory = []
    if out_path.exists():
        trajectory = json.loads(out_path.read_text())
        if not isinstance(trajectory, list):
            raise SystemExit(f"{out_path} is not a JSON array")

    entry = {
        "bench": args.bench,
        "recorded_utc": datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_rev(),
        "rows": rows,
    }
    if args.note:
        entry["note"] = args.note
    previous = [e for e in trajectory if e.get("bench") == args.bench]
    trajectory.append(entry)
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"recorded {len(rows)} row(s) from {args.bench} -> {out_path}")
    if args.compare_last:
        if previous:
            print(f"vs previous entry ({previous[-1]['recorded_utc']}):")
            for line in compare_entries(previous[-1]["rows"], rows):
                print(line)
        else:
            print("no previous entry to compare against")


if __name__ == "__main__":
    main()
