# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/problem_io_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/configurator_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/raid_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
