file(REMOVE_RECURSE
  "CMakeFiles/problem_io_test.dir/problem_io_test.cc.o"
  "CMakeFiles/problem_io_test.dir/problem_io_test.cc.o.d"
  "problem_io_test"
  "problem_io_test.pdb"
  "problem_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/problem_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
