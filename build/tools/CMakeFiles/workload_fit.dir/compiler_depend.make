# Empty compiler generated dependencies file for workload_fit.
# This may be replaced when dependencies are built.
