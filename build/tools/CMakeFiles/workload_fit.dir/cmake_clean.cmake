file(REMOVE_RECURSE
  "CMakeFiles/workload_fit.dir/workload_fit.cc.o"
  "CMakeFiles/workload_fit.dir/workload_fit.cc.o.d"
  "workload_fit"
  "workload_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
