# Empty dependencies file for ldb_core.
# This may be replaced when dependencies are built.
