file(REMOVE_RECURSE
  "libldb_core.a"
)
