file(REMOVE_RECURSE
  "CMakeFiles/ldb_core.dir/advisor.cc.o"
  "CMakeFiles/ldb_core.dir/advisor.cc.o.d"
  "CMakeFiles/ldb_core.dir/autoadmin.cc.o"
  "CMakeFiles/ldb_core.dir/autoadmin.cc.o.d"
  "CMakeFiles/ldb_core.dir/baselines.cc.o"
  "CMakeFiles/ldb_core.dir/baselines.cc.o.d"
  "CMakeFiles/ldb_core.dir/configurator.cc.o"
  "CMakeFiles/ldb_core.dir/configurator.cc.o.d"
  "CMakeFiles/ldb_core.dir/harness.cc.o"
  "CMakeFiles/ldb_core.dir/harness.cc.o.d"
  "CMakeFiles/ldb_core.dir/incremental.cc.o"
  "CMakeFiles/ldb_core.dir/incremental.cc.o.d"
  "CMakeFiles/ldb_core.dir/initial.cc.o"
  "CMakeFiles/ldb_core.dir/initial.cc.o.d"
  "CMakeFiles/ldb_core.dir/problem.cc.o"
  "CMakeFiles/ldb_core.dir/problem.cc.o.d"
  "CMakeFiles/ldb_core.dir/problem_io.cc.o"
  "CMakeFiles/ldb_core.dir/problem_io.cc.o.d"
  "CMakeFiles/ldb_core.dir/regularize.cc.o"
  "CMakeFiles/ldb_core.dir/regularize.cc.o.d"
  "libldb_core.a"
  "libldb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
