
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/ldb_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/autoadmin.cc" "src/core/CMakeFiles/ldb_core.dir/autoadmin.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/autoadmin.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/ldb_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/configurator.cc" "src/core/CMakeFiles/ldb_core.dir/configurator.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/configurator.cc.o.d"
  "/root/repo/src/core/harness.cc" "src/core/CMakeFiles/ldb_core.dir/harness.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/harness.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/ldb_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/initial.cc" "src/core/CMakeFiles/ldb_core.dir/initial.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/initial.cc.o.d"
  "/root/repo/src/core/problem.cc" "src/core/CMakeFiles/ldb_core.dir/problem.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/problem.cc.o.d"
  "/root/repo/src/core/problem_io.cc" "src/core/CMakeFiles/ldb_core.dir/problem_io.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/problem_io.cc.o.d"
  "/root/repo/src/core/regularize.cc" "src/core/CMakeFiles/ldb_core.dir/regularize.cc.o" "gcc" "src/core/CMakeFiles/ldb_core.dir/regularize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ldb_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ldb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ldb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ldb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
