file(REMOVE_RECURSE
  "libldb_trace.a"
)
