# Empty dependencies file for ldb_trace.
# This may be replaced when dependencies are built.
