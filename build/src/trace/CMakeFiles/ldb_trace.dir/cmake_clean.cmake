file(REMOVE_RECURSE
  "CMakeFiles/ldb_trace.dir/analyzer.cc.o"
  "CMakeFiles/ldb_trace.dir/analyzer.cc.o.d"
  "CMakeFiles/ldb_trace.dir/replay.cc.o"
  "CMakeFiles/ldb_trace.dir/replay.cc.o.d"
  "CMakeFiles/ldb_trace.dir/trace.cc.o"
  "CMakeFiles/ldb_trace.dir/trace.cc.o.d"
  "libldb_trace.a"
  "libldb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
