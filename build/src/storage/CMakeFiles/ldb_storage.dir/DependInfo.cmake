
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk.cc" "src/storage/CMakeFiles/ldb_storage.dir/disk.cc.o" "gcc" "src/storage/CMakeFiles/ldb_storage.dir/disk.cc.o.d"
  "/root/repo/src/storage/event_queue.cc" "src/storage/CMakeFiles/ldb_storage.dir/event_queue.cc.o" "gcc" "src/storage/CMakeFiles/ldb_storage.dir/event_queue.cc.o.d"
  "/root/repo/src/storage/lvm.cc" "src/storage/CMakeFiles/ldb_storage.dir/lvm.cc.o" "gcc" "src/storage/CMakeFiles/ldb_storage.dir/lvm.cc.o.d"
  "/root/repo/src/storage/ssd.cc" "src/storage/CMakeFiles/ldb_storage.dir/ssd.cc.o" "gcc" "src/storage/CMakeFiles/ldb_storage.dir/ssd.cc.o.d"
  "/root/repo/src/storage/storage_system.cc" "src/storage/CMakeFiles/ldb_storage.dir/storage_system.cc.o" "gcc" "src/storage/CMakeFiles/ldb_storage.dir/storage_system.cc.o.d"
  "/root/repo/src/storage/target.cc" "src/storage/CMakeFiles/ldb_storage.dir/target.cc.o" "gcc" "src/storage/CMakeFiles/ldb_storage.dir/target.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
