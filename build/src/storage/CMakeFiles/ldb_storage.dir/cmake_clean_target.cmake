file(REMOVE_RECURSE
  "libldb_storage.a"
)
