file(REMOVE_RECURSE
  "CMakeFiles/ldb_storage.dir/disk.cc.o"
  "CMakeFiles/ldb_storage.dir/disk.cc.o.d"
  "CMakeFiles/ldb_storage.dir/event_queue.cc.o"
  "CMakeFiles/ldb_storage.dir/event_queue.cc.o.d"
  "CMakeFiles/ldb_storage.dir/lvm.cc.o"
  "CMakeFiles/ldb_storage.dir/lvm.cc.o.d"
  "CMakeFiles/ldb_storage.dir/ssd.cc.o"
  "CMakeFiles/ldb_storage.dir/ssd.cc.o.d"
  "CMakeFiles/ldb_storage.dir/storage_system.cc.o"
  "CMakeFiles/ldb_storage.dir/storage_system.cc.o.d"
  "CMakeFiles/ldb_storage.dir/target.cc.o"
  "CMakeFiles/ldb_storage.dir/target.cc.o.d"
  "libldb_storage.a"
  "libldb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
