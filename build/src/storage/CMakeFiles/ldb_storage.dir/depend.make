# Empty dependencies file for ldb_storage.
# This may be replaced when dependencies are built.
