# Empty dependencies file for ldb_solver.
# This may be replaced when dependencies are built.
