file(REMOVE_RECURSE
  "libldb_solver.a"
)
