file(REMOVE_RECURSE
  "CMakeFiles/ldb_solver.dir/multistart.cc.o"
  "CMakeFiles/ldb_solver.dir/multistart.cc.o.d"
  "CMakeFiles/ldb_solver.dir/projected_gradient.cc.o"
  "CMakeFiles/ldb_solver.dir/projected_gradient.cc.o.d"
  "CMakeFiles/ldb_solver.dir/randomized.cc.o"
  "CMakeFiles/ldb_solver.dir/randomized.cc.o.d"
  "CMakeFiles/ldb_solver.dir/simplex.cc.o"
  "CMakeFiles/ldb_solver.dir/simplex.cc.o.d"
  "libldb_solver.a"
  "libldb_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
