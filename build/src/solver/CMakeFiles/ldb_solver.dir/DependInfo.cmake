
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/multistart.cc" "src/solver/CMakeFiles/ldb_solver.dir/multistart.cc.o" "gcc" "src/solver/CMakeFiles/ldb_solver.dir/multistart.cc.o.d"
  "/root/repo/src/solver/projected_gradient.cc" "src/solver/CMakeFiles/ldb_solver.dir/projected_gradient.cc.o" "gcc" "src/solver/CMakeFiles/ldb_solver.dir/projected_gradient.cc.o.d"
  "/root/repo/src/solver/randomized.cc" "src/solver/CMakeFiles/ldb_solver.dir/randomized.cc.o" "gcc" "src/solver/CMakeFiles/ldb_solver.dir/randomized.cc.o.d"
  "/root/repo/src/solver/simplex.cc" "src/solver/CMakeFiles/ldb_solver.dir/simplex.cc.o" "gcc" "src/solver/CMakeFiles/ldb_solver.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ldb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
