# Empty dependencies file for ldb_workload.
# This may be replaced when dependencies are built.
