file(REMOVE_RECURSE
  "CMakeFiles/ldb_workload.dir/catalog.cc.o"
  "CMakeFiles/ldb_workload.dir/catalog.cc.o.d"
  "CMakeFiles/ldb_workload.dir/estimator.cc.o"
  "CMakeFiles/ldb_workload.dir/estimator.cc.o.d"
  "CMakeFiles/ldb_workload.dir/runner.cc.o"
  "CMakeFiles/ldb_workload.dir/runner.cc.o.d"
  "CMakeFiles/ldb_workload.dir/spec.cc.o"
  "CMakeFiles/ldb_workload.dir/spec.cc.o.d"
  "CMakeFiles/ldb_workload.dir/tpch.cc.o"
  "CMakeFiles/ldb_workload.dir/tpch.cc.o.d"
  "libldb_workload.a"
  "libldb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
