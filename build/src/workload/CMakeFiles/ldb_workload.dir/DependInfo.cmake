
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/ldb_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/ldb_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/estimator.cc" "src/workload/CMakeFiles/ldb_workload.dir/estimator.cc.o" "gcc" "src/workload/CMakeFiles/ldb_workload.dir/estimator.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/workload/CMakeFiles/ldb_workload.dir/runner.cc.o" "gcc" "src/workload/CMakeFiles/ldb_workload.dir/runner.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/workload/CMakeFiles/ldb_workload.dir/spec.cc.o" "gcc" "src/workload/CMakeFiles/ldb_workload.dir/spec.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/workload/CMakeFiles/ldb_workload.dir/tpch.cc.o" "gcc" "src/workload/CMakeFiles/ldb_workload.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/ldb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
