file(REMOVE_RECURSE
  "libldb_workload.a"
)
