
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/calibration.cc" "src/model/CMakeFiles/ldb_model.dir/calibration.cc.o" "gcc" "src/model/CMakeFiles/ldb_model.dir/calibration.cc.o.d"
  "/root/repo/src/model/constraints.cc" "src/model/CMakeFiles/ldb_model.dir/constraints.cc.o" "gcc" "src/model/CMakeFiles/ldb_model.dir/constraints.cc.o.d"
  "/root/repo/src/model/cost_model.cc" "src/model/CMakeFiles/ldb_model.dir/cost_model.cc.o" "gcc" "src/model/CMakeFiles/ldb_model.dir/cost_model.cc.o.d"
  "/root/repo/src/model/layout.cc" "src/model/CMakeFiles/ldb_model.dir/layout.cc.o" "gcc" "src/model/CMakeFiles/ldb_model.dir/layout.cc.o.d"
  "/root/repo/src/model/layout_model.cc" "src/model/CMakeFiles/ldb_model.dir/layout_model.cc.o" "gcc" "src/model/CMakeFiles/ldb_model.dir/layout_model.cc.o.d"
  "/root/repo/src/model/target_model.cc" "src/model/CMakeFiles/ldb_model.dir/target_model.cc.o" "gcc" "src/model/CMakeFiles/ldb_model.dir/target_model.cc.o.d"
  "/root/repo/src/model/workload.cc" "src/model/CMakeFiles/ldb_model.dir/workload.cc.o" "gcc" "src/model/CMakeFiles/ldb_model.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ldb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
