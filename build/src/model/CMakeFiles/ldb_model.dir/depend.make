# Empty dependencies file for ldb_model.
# This may be replaced when dependencies are built.
