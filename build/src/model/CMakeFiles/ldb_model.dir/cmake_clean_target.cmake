file(REMOVE_RECURSE
  "libldb_model.a"
)
