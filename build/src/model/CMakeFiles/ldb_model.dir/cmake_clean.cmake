file(REMOVE_RECURSE
  "CMakeFiles/ldb_model.dir/calibration.cc.o"
  "CMakeFiles/ldb_model.dir/calibration.cc.o.d"
  "CMakeFiles/ldb_model.dir/constraints.cc.o"
  "CMakeFiles/ldb_model.dir/constraints.cc.o.d"
  "CMakeFiles/ldb_model.dir/cost_model.cc.o"
  "CMakeFiles/ldb_model.dir/cost_model.cc.o.d"
  "CMakeFiles/ldb_model.dir/layout.cc.o"
  "CMakeFiles/ldb_model.dir/layout.cc.o.d"
  "CMakeFiles/ldb_model.dir/layout_model.cc.o"
  "CMakeFiles/ldb_model.dir/layout_model.cc.o.d"
  "CMakeFiles/ldb_model.dir/target_model.cc.o"
  "CMakeFiles/ldb_model.dir/target_model.cc.o.d"
  "CMakeFiles/ldb_model.dir/workload.cc.o"
  "CMakeFiles/ldb_model.dir/workload.cc.o.d"
  "libldb_model.a"
  "libldb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
