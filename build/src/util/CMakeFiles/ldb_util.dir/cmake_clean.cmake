file(REMOVE_RECURSE
  "CMakeFiles/ldb_util.dir/interp.cc.o"
  "CMakeFiles/ldb_util.dir/interp.cc.o.d"
  "CMakeFiles/ldb_util.dir/random.cc.o"
  "CMakeFiles/ldb_util.dir/random.cc.o.d"
  "CMakeFiles/ldb_util.dir/status.cc.o"
  "CMakeFiles/ldb_util.dir/status.cc.o.d"
  "CMakeFiles/ldb_util.dir/table.cc.o"
  "CMakeFiles/ldb_util.dir/table.cc.o.d"
  "CMakeFiles/ldb_util.dir/units.cc.o"
  "CMakeFiles/ldb_util.dir/units.cc.o.d"
  "libldb_util.a"
  "libldb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
