file(REMOVE_RECURSE
  "libldb_util.a"
)
