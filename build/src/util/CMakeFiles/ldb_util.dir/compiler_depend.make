# Empty compiler generated dependencies file for ldb_util.
# This may be replaced when dependencies are built.
