# Empty dependencies file for configure.
# This may be replaced when dependencies are built.
