file(REMOVE_RECURSE
  "CMakeFiles/configure.dir/configure.cpp.o"
  "CMakeFiles/configure.dir/configure.cpp.o.d"
  "configure"
  "configure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
