# Empty compiler generated dependencies file for bench_fig17_heterogeneous.
# This may be replaced when dependencies are built.
