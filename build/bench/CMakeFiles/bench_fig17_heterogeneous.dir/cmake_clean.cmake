file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_heterogeneous.dir/bench_fig17_heterogeneous.cc.o"
  "CMakeFiles/bench_fig17_heterogeneous.dir/bench_fig17_heterogeneous.cc.o.d"
  "bench_fig17_heterogeneous"
  "bench_fig17_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
