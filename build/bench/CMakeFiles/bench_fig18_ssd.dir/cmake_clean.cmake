file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_ssd.dir/bench_fig18_ssd.cc.o"
  "CMakeFiles/bench_fig18_ssd.dir/bench_fig18_ssd.cc.o.d"
  "bench_fig18_ssd"
  "bench_fig18_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
