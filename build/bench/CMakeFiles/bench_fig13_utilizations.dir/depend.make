# Empty dependencies file for bench_fig13_utilizations.
# This may be replaced when dependencies are built.
