file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_utilizations.dir/bench_fig13_utilizations.cc.o"
  "CMakeFiles/bench_fig13_utilizations.dir/bench_fig13_utilizations.cc.o.d"
  "bench_fig13_utilizations"
  "bench_fig13_utilizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_utilizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
