file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_advisor.dir/bench_ablation_advisor.cc.o"
  "CMakeFiles/bench_ablation_advisor.dir/bench_ablation_advisor.cc.o.d"
  "bench_ablation_advisor"
  "bench_ablation_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
