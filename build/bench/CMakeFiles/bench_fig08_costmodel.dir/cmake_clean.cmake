file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_costmodel.dir/bench_fig08_costmodel.cc.o"
  "CMakeFiles/bench_fig08_costmodel.dir/bench_fig08_costmodel.cc.o.d"
  "bench_fig08_costmodel"
  "bench_fig08_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
