# Empty dependencies file for bench_fig08_costmodel.
# This may be replaced when dependencies are built.
