# Empty dependencies file for bench_fig19_opttime.
# This may be replaced when dependencies are built.
