file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_opttime.dir/bench_fig19_opttime.cc.o"
  "CMakeFiles/bench_fig19_opttime.dir/bench_fig19_opttime.cc.o.d"
  "bench_fig19_opttime"
  "bench_fig19_opttime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_opttime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
