file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_consolidation.dir/bench_fig15_consolidation.cc.o"
  "CMakeFiles/bench_fig15_consolidation.dir/bench_fig15_consolidation.cc.o.d"
  "bench_fig15_consolidation"
  "bench_fig15_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
