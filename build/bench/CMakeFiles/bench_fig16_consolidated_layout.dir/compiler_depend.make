# Empty compiler generated dependencies file for bench_fig16_consolidated_layout.
# This may be replaced when dependencies are built.
