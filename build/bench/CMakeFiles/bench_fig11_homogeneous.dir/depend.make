# Empty dependencies file for bench_fig11_homogeneous.
# This may be replaced when dependencies are built.
