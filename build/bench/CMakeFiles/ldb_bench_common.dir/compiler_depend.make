# Empty compiler generated dependencies file for ldb_bench_common.
# This may be replaced when dependencies are built.
