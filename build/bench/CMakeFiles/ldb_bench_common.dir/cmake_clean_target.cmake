file(REMOVE_RECURSE
  "../lib/libldb_bench_common.a"
)
