file(REMOVE_RECURSE
  "../lib/libldb_bench_common.a"
  "../lib/libldb_bench_common.pdb"
  "CMakeFiles/ldb_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ldb_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
