# Empty dependencies file for bench_ablation_raid.
# This may be replaced when dependencies are built.
