# Empty compiler generated dependencies file for bench_fig20_autoadmin.
# This may be replaced when dependencies are built.
