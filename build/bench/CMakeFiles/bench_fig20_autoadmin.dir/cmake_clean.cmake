file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_autoadmin.dir/bench_fig20_autoadmin.cc.o"
  "CMakeFiles/bench_fig20_autoadmin.dir/bench_fig20_autoadmin.cc.o.d"
  "bench_fig20_autoadmin"
  "bench_fig20_autoadmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_autoadmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
