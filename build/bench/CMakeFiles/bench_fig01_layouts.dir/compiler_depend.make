# Empty compiler generated dependencies file for bench_fig01_layouts.
# This may be replaced when dependencies are built.
