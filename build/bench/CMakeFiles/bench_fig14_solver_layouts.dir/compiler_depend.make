# Empty compiler generated dependencies file for bench_fig14_solver_layouts.
# This may be replaced when dependencies are built.
